//! Memory request/response messages.
//!
//! GPUs and the CPU issue [`MemReq`]s; HMC vault controllers return
//! [`MemResp`]s. In HMC-style systems these are *packetized* high-level
//! messages (Fig. 3(b) in the paper), so the same types ride inside network
//! packets as their [`Payload`].

use crate::ids::{Agent, ReqId};

/// Size in bytes of a request/response packet header (command, address,
/// tag, CRC — per the HMC specification's abstracted packet format).
pub const HEADER_BYTES: u32 = 16;

/// What a memory request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read `bytes` starting at `addr`.
    Read,
    /// Write `bytes` starting at `addr` (write data travels with the
    /// request; the response is a short acknowledgement).
    Write,
    /// Read-modify-write executed by the atomic unit on the HMC logic die
    /// (Section III-D). Carries operand data both ways.
    Atomic,
}

impl AccessKind {
    /// True for operations that deliver data back to the requester.
    #[inline]
    pub fn returns_data(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Atomic)
    }

    /// True for operations that carry data toward memory.
    #[inline]
    pub fn carries_data(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Atomic)
    }
}

/// A memory request on its way to an HMC vault (or DDR model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Unique id; the response echoes it.
    pub id: ReqId,
    /// Physical byte address.
    pub addr: u64,
    /// Access size in bytes (128 B for GPU cache lines, 64 B for CPU).
    pub bytes: u32,
    /// Operation kind.
    pub kind: AccessKind,
    /// Issuing agent; the response is routed back to this agent's endpoint.
    pub src: Agent,
}

impl MemReq {
    /// Total bytes this request occupies on a link (header + write data).
    #[inline]
    pub fn packet_bytes(&self) -> u32 {
        HEADER_BYTES
            + if self.kind.carries_data() {
                self.bytes
            } else {
                0
            }
    }

    /// Builds the response for this request.
    #[inline]
    pub fn response(&self) -> MemResp {
        MemResp {
            id: self.id,
            addr: self.addr,
            bytes: self.bytes,
            kind: self.kind,
            src: self.src,
        }
    }
}

/// A completed memory operation returning to its requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResp {
    /// Echo of the request id.
    pub id: ReqId,
    /// Physical byte address of the original request.
    pub addr: u64,
    /// Access size of the original request in bytes.
    pub bytes: u32,
    /// Operation kind of the original request.
    pub kind: AccessKind,
    /// Original requester.
    pub src: Agent,
}

impl MemResp {
    /// Total bytes this response occupies on a link (header + read data).
    #[inline]
    pub fn packet_bytes(&self) -> u32 {
        HEADER_BYTES
            + if self.kind.returns_data() {
                self.bytes
            } else {
                0
            }
    }
}

/// What a network packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// A request travelling toward memory.
    Req(MemReq),
    /// A response travelling back to the requester.
    Resp(MemResp),
}

impl Payload {
    /// Bytes on the wire, header included.
    #[inline]
    pub fn packet_bytes(&self) -> u32 {
        match self {
            Payload::Req(r) => r.packet_bytes(),
            Payload::Resp(r) => r.packet_bytes(),
        }
    }

    /// The agent that originated the transaction.
    #[inline]
    pub fn src(&self) -> Agent {
        match self {
            Payload::Req(r) => r.src,
            Payload::Resp(r) => r.src,
        }
    }

    /// True if this is a request (toward memory).
    #[inline]
    pub fn is_req(&self) -> bool {
        matches!(self, Payload::Req(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CpuId, GpuId};

    fn req(kind: AccessKind, bytes: u32) -> MemReq {
        MemReq {
            id: ReqId(1),
            addr: 0x1000,
            bytes,
            kind,
            src: Agent::Gpu(GpuId(0)),
        }
    }

    #[test]
    fn read_request_is_header_only() {
        assert_eq!(req(AccessKind::Read, 128).packet_bytes(), 16);
    }

    #[test]
    fn write_request_carries_data() {
        assert_eq!(req(AccessKind::Write, 128).packet_bytes(), 144);
    }

    #[test]
    fn read_response_carries_data_write_ack_does_not() {
        assert_eq!(req(AccessKind::Read, 128).response().packet_bytes(), 144);
        assert_eq!(req(AccessKind::Write, 128).response().packet_bytes(), 16);
    }

    #[test]
    fn atomic_carries_data_both_ways() {
        let a = req(AccessKind::Atomic, 16);
        assert_eq!(a.packet_bytes(), 32);
        assert_eq!(a.response().packet_bytes(), 32);
    }

    #[test]
    fn response_echoes_request() {
        let r = req(AccessKind::Read, 64);
        let resp = r.response();
        assert_eq!(resp.id, r.id);
        assert_eq!(resp.addr, r.addr);
        assert_eq!(resp.src, r.src);
    }

    #[test]
    fn payload_accessors() {
        let r = MemReq {
            id: ReqId(9),
            addr: 0,
            bytes: 64,
            kind: AccessKind::Read,
            src: Agent::Cpu(CpuId(0)),
        };
        let p = Payload::Req(r);
        assert!(p.is_req());
        assert_eq!(p.src(), Agent::Cpu(CpuId(0)));
        assert_eq!(p.packet_bytes(), 16);
        let q = Payload::Resp(r.response());
        assert!(!q.is_req());
        assert_eq!(q.packet_bytes(), 80);
    }
}
