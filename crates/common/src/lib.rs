//! Common foundation types for the `memnet` multi-GPU memory-network simulator.
//!
//! This crate holds everything that more than one subsystem needs:
//!
//! * strongly-typed identifiers for the agents in the system ([`ids`]),
//! * femtosecond-resolution simulation time and multi-rate clocks ([`time`]),
//! * the memory request/response messages that flow between GPUs, CPUs and
//!   HMCs ([`mem`]),
//! * a small deterministic RNG used by workload models and placement
//!   policies ([`rng`]),
//! * statistics helpers — running means, histograms and the GPU×HMC traffic
//!   matrix of Fig. 10 ([`stats`]),
//! * the Table I system configuration ([`config`]),
//! * deterministic fault plans for chaos and resilience runs ([`faults`]).
//!
//! # Example
//!
//! ```
//! use memnet_common::time::{Clock, FS_PER_NS};
//!
//! // A 1.25 GHz network clock (0.8 ns period).
//! let mut clk = Clock::from_freq_mhz(1250.0);
//! assert_eq!(clk.period_fs(), 800_000);
//! assert!(clk.due(0));
//! clk.advance();
//! assert!(!clk.due(FS_PER_NS / 2));
//! assert!(clk.due(FS_PER_NS));
//! ```

pub mod config;
pub mod faults;
pub mod ids;
pub mod mem;
pub mod rng;
pub mod stats;
pub mod time;

pub use config::SystemConfig;
pub use faults::{FaultEvent, FaultKind, FaultPlan, LinkClass};
pub use ids::{Agent, CpuId, GpuId, HmcId, NodeId, ReqId, SmId, VaultId};
pub use mem::{AccessKind, MemReq, MemResp, Payload};
pub use rng::SplitMix64;
pub use time::{Clock, Fs};
