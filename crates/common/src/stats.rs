//! Statistics collection: running moments, latency histograms, the GPU×HMC
//! traffic matrix of Fig. 10, and small numeric helpers (geometric mean for
//! the Fig. 19 scalability summary).

use std::fmt;

/// Streaming mean/min/max/count accumulator.
#[derive(Debug, Clone, Copy)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The raw `(count, sum, min, max)` fields, including the ±∞ sentinels
    /// of an empty accumulator. Checkpoint hook: feed the tuple back
    /// through [`RunningStats::from_raw`] to reconstruct bit-identically.
    pub fn raw(&self) -> (u64, f64, f64, f64) {
        (self.count, self.sum, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`RunningStats::raw`] output.
    pub fn from_raw(count: u64, sum: f64, min: f64, max: f64) -> Self {
        RunningStats {
            count,
            sum,
            min,
            max,
        }
    }
}

// A derived Default would zero-initialize `min`/`max`, silently clamping
// the observed minimum of any default-constructed accumulator to 0.0 (and
// corrupting the result of `merge`). Defer to `new()` and its ±∞ sentinels.
impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.2} min={:.2} max={:.2}",
                self.count,
                self.mean(),
                self.min,
                self.max
            )
        }
    }
}

/// Power-of-two bucketed histogram for latencies / queue depths.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `log2(max)+1` buckets; values ≥ 2^63 land in
    /// the last bucket.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize; // 0 -> bucket 0, 1 -> 1, 2..3 -> 2, ...
        self.buckets[b.min(63)] += 1;
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw bucket counts; bucket `i > 0` covers `[2^(i-1), 2^i)`.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate percentile (0..=100) as the lower bound of the bucket that
    /// crosses it. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (p / 100.0 * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        1u64 << 62
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Source × destination traffic accumulation in bytes (Fig. 10).
///
/// Rows are traffic sources (GPUs), columns are HMCs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficMatrix {
    rows: usize,
    cols: usize,
    bytes: Vec<u64>,
}

impl TrafficMatrix {
    /// Creates a zeroed `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TrafficMatrix {
            rows,
            cols,
            bytes: vec![0; rows * cols],
        }
    }

    /// Number of source rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of destination columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Adds `bytes` of traffic from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dst` are out of range.
    #[inline]
    pub fn add(&mut self, src: usize, dst: usize, bytes: u64) {
        assert!(
            src < self.rows && dst < self.cols,
            "traffic matrix index out of range"
        );
        self.bytes[src * self.cols + dst] += bytes;
    }

    /// Raw byte count for a cell.
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.cols + dst]
    }

    /// Total bytes across all cells.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Each cell as a fraction of the total (all zeros when empty).
    pub fn fractions(&self) -> Vec<Vec<f64>> {
        let total = self.total().max(1) as f64;
        (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| self.get(r, c) as f64 / total)
                    .collect()
            })
            .collect()
    }

    /// Per-destination (column) totals — the per-HMC load used to measure
    /// the Fig. 10(b) imbalance.
    pub fn column_totals(&self) -> Vec<u64> {
        (0..self.cols)
            .map(|c| (0..self.rows).map(|r| self.get(r, c)).sum())
            .collect()
    }

    /// The flat row-major cell contents — checkpoint hook.
    pub fn raw_bytes(&self) -> &[u64] {
        &self.bytes
    }

    /// Overwrites the cell contents from a [`TrafficMatrix::raw_bytes`]
    /// slice recorded on an identically shaped matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != rows * cols`.
    pub fn restore_bytes(&mut self, bytes: &[u64]) {
        assert_eq!(
            bytes.len(),
            self.rows * self.cols,
            "traffic matrix shape mismatch on restore"
        );
        self.bytes.copy_from_slice(bytes);
    }

    /// Ratio of the hottest to the coldest *nonzero* destination, the
    /// imbalance metric quoted in Section V-A (up to 11.7× for CG.S).
    pub fn max_min_column_ratio(&self) -> f64 {
        let totals = self.column_totals();
        let max = totals.iter().copied().max().unwrap_or(0);
        let min = totals.iter().copied().filter(|&t| t > 0).min().unwrap_or(0);
        if min == 0 {
            0.0
        } else {
            max as f64 / min as f64
        }
    }
}

/// Geometric mean of positive values; returns 0.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        s.record(2.0);
        s.record(4.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn running_stats_merge() {
        let mut a = RunningStats::new();
        a.record(1.0);
        let mut b = RunningStats::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(5.0));
        let empty = RunningStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn default_uses_infinity_sentinels() {
        // Regression: a derived Default zeroed min/max, so a default
        // accumulator reported min() = Some(0.0) after recording only
        // positive samples, and merging it corrupted the other side's min.
        let mut d = RunningStats::default();
        d.record(5.0);
        assert_eq!(d.min(), Some(5.0));
        assert_eq!(d.max(), Some(5.0));

        let mut a = RunningStats::new();
        a.record(3.0);
        a.merge(&RunningStats::default());
        assert_eq!(a.min(), Some(3.0));

        let mut b = RunningStats::default();
        b.record(-2.0);
        let mut c = RunningStats::new();
        c.record(7.0);
        c.merge(&b);
        assert_eq!(c.min(), Some(-2.0));
        assert_eq!(c.max(), Some(7.0));
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!(h.percentile(50.0) <= 4);
        assert!(h.percentile(100.0) >= 512);
        assert_eq!(Histogram::new().percentile(99.0), 0);
    }

    #[test]
    fn histogram_zero_and_huge() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn traffic_matrix_fractions_sum_to_one() {
        let mut m = TrafficMatrix::new(2, 4);
        m.add(0, 0, 100);
        m.add(1, 3, 300);
        let f = m.fractions();
        let total: f64 = f.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((f[1][3] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn traffic_matrix_imbalance_ratio() {
        let mut m = TrafficMatrix::new(1, 3);
        m.add(0, 0, 10);
        m.add(0, 1, 117);
        assert!((m.max_min_column_ratio() - 11.7).abs() < 1e-9);
        // All-zero matrix has no defined ratio.
        assert_eq!(TrafficMatrix::new(1, 3).max_min_column_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn traffic_matrix_bounds() {
        let mut m = TrafficMatrix::new(1, 1);
        m.add(0, 1, 1);
    }

    #[test]
    fn geomean_matches_hand_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
