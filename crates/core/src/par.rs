//! The parallel engine's worker crew: conservative-PDES sharding of one
//! simulation across std threads, bit-identical to both sequential
//! engines.
//!
//! # Actor partition
//!
//! The driver (the calling thread) keeps the entire sequential engine
//! loop — calendar, network, HMC ports, CPU, DMA, faults, steals,
//! metrics, sanitizer, profiler — and therefore keeps every ordering
//! decision those subsystems make. What moves to worker threads is
//! exactly the per-device work inside a clock edge: each worker owns a
//! contiguous shard of GPUs (core + L2 edges) and a contiguous shard of
//! HMCs (DRAM edges). Device ticks are independent within an edge — a
//! GPU's core tick reads only its own state plus responses the driver
//! delivered *before* the edge, and an HMC's vault tick touches only its
//! own queues — so executing a shard on another thread computes exactly
//! the bytes the sequential loop would.
//!
//! # Synchronization (lookahead = one clock edge)
//!
//! The protocol is the degenerate-lookahead corner of conservative PDES:
//! the driver publishes a monotone job number through a [`SeqCell`] (its
//! horizon — no message with an earlier timestamp can ever be sent), each
//! worker executes the edge and publishes the job number back through its
//! commit cell (its lower-bound timestamp), and the driver never touches
//! shard state before every commit has caught up. Horizon and commit
//! publishes are the protocol's null messages and are counted as such
//! (`pdes.null_messages`); wait time on either side accumulates into
//! `pdes.blocked_ns`. The NoC's SerDes + router-pipeline latency
//! ([`Network::lookahead_cycles`]) guarantees a request injected at net
//! edge *t* cannot eject before *t + lookahead*, which is what makes the
//! one-edge window sufficient: everything a worker may observe at edge
//! *t* was already committed by the driver strictly before *t*.
//!
//! # Deterministic merge
//!
//! Trace events are the one shard output that lands in a shared, ordered
//! sink. Workers record them into private [`Tracer`]s configured with the
//! same per-domain clock periods as the driver's, then the driver replays
//! each edge's events in (edge, domain slot, shard index) order — the
//! exact insertion order of the sequential loop — so the ring buffer's
//! drop-oldest behavior, the `dropped` counter, and the exported JSON are
//! byte-identical. Nothing is ever merged by arrival order.
//!
//! # Safety
//!
//! Workers access their shards through raw pointers into the `System`'s
//! vectors. The temporal discipline that makes this sound: a worker
//! dereferences shard pointers only between observing a job publish and
//! issuing its commit publish, and the driver touches shard state only
//! while no job is outstanding. The `SeqCell` publishes are
//! release/acquire pairs, so the handoffs are also proper happens-before
//! edges. The vectors are never resized while a crew exists.

use super::*;
use memnet_engine::pdes::{self, Gate, LaneCtx, PdesCounters, SeqCell};
use memnet_obs::prof::LaneAttr;
use memnet_obs::TraceEvent;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Job kinds the driver dispatches to the crew.
pub(super) const EDGE_CORE: u8 = 0;
pub(super) const EDGE_L2: u8 = 1;
pub(super) const EDGE_DRAM: u8 = 2;
const EDGE_EXIT: u8 = 3;

/// Worker-local tracer capacity: effectively unbounded so a worker never
/// drops an event — ring-buffer eviction (and the `dropped` counter) must
/// happen only at the driver's replay, where sequential semantics apply.
const WORKER_TRACE_CAP: usize = usize::MAX;

/// Compile-time proof that everything a worker dereferences may cross a
/// thread boundary.
#[allow(dead_code)]
fn assert_shard_types_are_send() {
    fn ok<T: Send>() {}
    ok::<Gpu>();
    ok::<HmcDevice>();
    ok::<HmcPort>();
    ok::<TraceEvent>();
}

/// Splits `0..n` into `k` contiguous chunks (the same arithmetic as the
/// SKE's static partition, so shard boundaries are stable and documented).
fn chunks(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let per = n.div_ceil(k.max(1));
    (0..k)
        .map(|w| (w * per).min(n)..((w + 1) * per).min(n))
        .collect()
}

/// Shared state between the driver and its workers for one kernel phase.
pub(super) struct ParCrew {
    // Raw shard pointers into the `System`'s device vectors; see the
    // module-level safety contract.
    gpus: *mut Gpu,
    n_gpus: usize,
    hmcs: *mut HmcDevice,
    ports: *mut HmcPort,
    n_hmcs: usize,

    /// Driver → workers: the current job number (monotone).
    job: SeqCell,
    /// Kind of the current job; written before the job publish.
    kind: AtomicU8,
    /// DRAM tick count for [`EDGE_DRAM`] jobs; written before the publish.
    dram_tck: AtomicU64,
    /// Workers → driver: per-worker last finished job number.
    commits: Vec<SeqCell>,

    /// Contiguous GPU index ranges, one per worker.
    gpu_shards: Vec<std::ops::Range<usize>>,
    /// Contiguous HMC index ranges, one per worker.
    hmc_shards: Vec<std::ops::Range<usize>>,
    /// Per-worker trace events from the job just committed, drained by
    /// the driver after the commit wait (so the lock is never contended).
    traces: Vec<Mutex<Vec<TraceEvent>>>,
    /// Clock periods for worker-local tracers; `None` when tracing is off.
    trace_clocks: Option<[(ClockDomain, f64); 3]>,

    pub(super) counters: PdesCounters,
    poisoned: AtomicBool,
    /// Blocked-time accumulator for the driver's commit waits (merged
    /// into the driver lane's profile after the join).
    pub(super) driver_blocked: AtomicU64,
    job_gate: Arc<Gate>,
    commit_gate: Arc<Gate>,
}

// SAFETY: the raw pointers are only dereferenced under the temporal
// discipline documented on the module (worker: between job and commit;
// driver: while no job is outstanding), and every pointed-to type is Send
// (checked above), so shards may be mutated from whichever thread holds
// the protocol's baton.
unsafe impl Send for ParCrew {}
unsafe impl Sync for ParCrew {}

impl ParCrew {
    fn new(sys: &mut System, n_workers: usize) -> ParCrew {
        let job_gate = Arc::new(Gate::new());
        let commit_gate = Arc::new(Gate::new());
        let n_gpus = sys.gpus.len();
        let n_hmcs = sys.hmcs.len();
        ParCrew {
            gpus: sys.gpus.as_mut_ptr(),
            n_gpus,
            hmcs: sys.hmcs.as_mut_ptr(),
            ports: sys.hmc_ports.as_mut_ptr(),
            n_hmcs,
            job: SeqCell::new(job_gate.clone()),
            kind: AtomicU8::new(EDGE_CORE),
            dram_tck: AtomicU64::new(0),
            commits: (0..n_workers)
                .map(|_| SeqCell::new(commit_gate.clone()))
                .collect(),
            gpu_shards: chunks(n_gpus, n_workers),
            hmc_shards: chunks(n_hmcs, n_workers),
            traces: (0..n_workers).map(|_| Mutex::new(Vec::new())).collect(),
            trace_clocks: sys.tracer.as_ref().map(|_| {
                [
                    (
                        ClockDomain::Core,
                        sys.cal.clock(domain::CORE).period_fs() as f64,
                    ),
                    (
                        ClockDomain::L2,
                        sys.cal.clock(domain::L2).period_fs() as f64,
                    ),
                    (
                        ClockDomain::Dram,
                        sys.cal.clock(domain::DRAM).period_fs() as f64,
                    ),
                ]
            }),
            counters: PdesCounters::new(),
            poisoned: AtomicBool::new(false),
            driver_blocked: AtomicU64::new(0),
            job_gate,
            commit_gate,
        }
    }

    fn driver_ctx(&self) -> LaneCtx<'_> {
        LaneCtx {
            counters: &self.counters,
            blocked: &self.driver_blocked,
            poisoned: &self.poisoned,
        }
    }

    /// Publishes the next job (kind and payload first, then the number).
    fn dispatch(&self, kind: u8, dram_tck: u64) -> u64 {
        let id = self.job.get() + 1;
        self.kind.store(kind, Ordering::Relaxed);
        self.dram_tck.store(dram_tck, Ordering::Relaxed);
        self.job.publish(id, &self.counters);
        id
    }

    /// Waits until every worker committed `job`. False means a lane
    /// panicked and the crew is poisoned.
    fn wait_commits(&self, job: u64) -> bool {
        let ctx = self.driver_ctx();
        self.commits.iter().all(|c| c.wait_ge(job, &ctx))
    }

    /// Marks the crew poisoned and wakes every parked lane.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.job_gate.notify();
        self.commit_gate.notify();
    }

    /// Dispatches the exit job so workers drain out for the join.
    fn shutdown(&self) {
        self.dispatch(EDGE_EXIT, 0);
    }

    /// One worker lane: execute dispatched edges on the owned shards
    /// until exit or poison. `blocked` is the lane's wait accumulator
    /// from [`pdes::run_actors`].
    fn worker_loop(&self, w: usize, blocked: &AtomicU64) {
        let ctx = LaneCtx {
            counters: &self.counters,
            blocked,
            poisoned: &self.poisoned,
        };
        let mut tracer = self.trace_clocks.as_ref().map(|clocks| {
            let mut t = Tracer::new(WORKER_TRACE_CAP);
            for &(d, fs) in clocks.iter() {
                t.set_clock(d, fs);
            }
            t
        });
        let mut last = 0u64;
        loop {
            let next = last + 1;
            if !self.job.wait_ge(next, &ctx) {
                return; // poisoned: a sibling lane panicked
            }
            last = next;
            let kind = self.kind.load(Ordering::Acquire);
            if kind == EDGE_EXIT {
                self.commits[w].publish(next, &self.counters);
                return;
            }
            // SAFETY: the driver published job `next` and is blocked on
            // our commit, so this worker has exclusive access to its
            // shard ranges (disjoint from every other worker's) until
            // the publish below.
            unsafe {
                match kind {
                    EDGE_CORE => {
                        for g in self.gpu_shards[w].clone() {
                            debug_assert!(g < self.n_gpus);
                            (*self.gpus.add(g)).tick_core_traced(tracer.as_mut());
                        }
                    }
                    EDGE_L2 => {
                        for g in self.gpu_shards[w].clone() {
                            (*self.gpus.add(g)).tick_l2();
                        }
                    }
                    EDGE_DRAM => {
                        let tck = self.dram_tck.load(Ordering::Acquire);
                        for i in self.hmc_shards[w].clone() {
                            debug_assert!(i < self.n_hmcs);
                            let h = &mut *self.hmcs.add(i);
                            h.tick_traced(tck, i as u32, tracer.as_mut());
                            let port = &mut *self.ports.add(i);
                            while let Some(req) = h.pop_completed(tck) {
                                if req.kind.returns_data() {
                                    port.resp_q.push_back(req.response());
                                }
                            }
                        }
                    }
                    _ => unreachable!("unknown parallel job kind {kind}"),
                }
            }
            if let Some(t) = tracer.as_mut() {
                if !t.is_empty() {
                    // memnet-lint: allow(tick-unwrap, trace-slot mutex is uncontended by protocol and never poisoned)
                    let mut slot = self.traces[w].lock().expect("trace slot lock");
                    slot.extend(t.take_events());
                }
            }
            self.commits[w].publish(next, &self.counters);
        }
    }
}

impl System {
    /// Executes one clock edge on the crew: dispatch, wait for every
    /// shard's commit, then replay worker trace events in shard order so
    /// the trace ring sees the sequential loop's exact insertion order.
    pub(super) fn par_edge(&mut self, kind: u8, dram_tck: u64) {
        let crew = Arc::clone(self.par.as_ref().expect("parallel edge without a crew"));
        let job = crew.dispatch(kind, dram_tck);
        if !crew.wait_commits(job) {
            panic!("parallel engine: a worker lane panicked (root cause precedes this on stderr)");
        }
        if let Some(t) = self.tracer.as_mut() {
            for slot in crew.traces.iter() {
                // memnet-lint: allow(tick-unwrap, trace-slot mutex is uncontended by protocol and never poisoned)
                let mut evs = slot.lock().expect("trace slot lock");
                for ev in evs.drain(..) {
                    t.replay(ev);
                }
            }
        }
    }

    /// The parallel kernel phase: spawns the worker crew, re-enters the
    /// sequential [`System::run_kernel_phase`] (which now routes core /
    /// L2 / DRAM edges through [`System::par_edge`]), and folds the
    /// crew's wall-clock attribution into the profiler.
    pub(super) fn run_kernel_phase_parallel(&mut self) -> Fs {
        let n_workers = (self.sim_threads as usize).min(self.gpus.len()).max(1);
        let crew = Arc::new(ParCrew::new(self, n_workers));
        let gates = [crew.job_gate.clone(), crew.commit_gate.clone()];
        let workers: Vec<pdes::WorkerFn<'_, ()>> = (0..n_workers)
            .map(|w| {
                let crew = Arc::clone(&crew);
                Box::new(move |ctx: LaneCtx<'_>| crew.worker_loop(w, ctx.blocked))
                    as pdes::WorkerFn<'_, ()>
            })
            .collect();
        let crew_d = Arc::clone(&crew);
        let this = &mut *self;
        let res = pdes::run_actors(&crew.counters, &gates, workers, move |_ctx| {
            this.par = Some(Arc::clone(&crew_d));
            let r =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| this.run_kernel_phase()));
            this.par = None;
            match r {
                Ok(t) => {
                    crew_d.shutdown();
                    t
                }
                Err(p) => {
                    crew_d.poison();
                    std::panic::resume_unwind(p)
                }
            }
        });
        if let Some(p) = self.prof.as_mut() {
            let (nulls, blocked) = crew.counters.snapshot();
            let driver_blocked = crew.driver_blocked.load(Ordering::Relaxed);
            p.profiler.add_pdes(
                nulls,
                blocked,
                res.lanes.iter().enumerate().map(|(i, l)| LaneAttr {
                    name: l.name.clone(),
                    wall_ns: l.wall_ns,
                    blocked_ns: if i == 0 {
                        l.blocked_ns.saturating_add(driver_blocked)
                    } else {
                        l.blocked_ns
                    },
                }),
            );
        }
        res.driver
    }
}
