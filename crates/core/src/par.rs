//! The parallel engine's worker crew: conservative-PDES sharding of one
//! simulation across std threads, bit-identical to both sequential
//! engines.
//!
//! # Actor partition
//!
//! The driver (the calling thread) keeps the entire sequential engine
//! loop — calendar, network, HMC ports, CPU, DMA, faults, steals,
//! metrics, sanitizer, profiler — and therefore keeps every ordering
//! decision those subsystems make. What moves to worker threads is
//! exactly the per-device work inside a clock edge: each worker owns a
//! contiguous shard of GPUs (core + L2 edges) and a contiguous shard of
//! HMCs (DRAM edges). Device ticks are independent within an edge — a
//! GPU's core tick reads only its own state plus responses the driver
//! delivered *before* the edge, and an HMC's vault tick touches only its
//! own queues — so executing a shard on another thread computes exactly
//! the bytes the sequential loop would.
//!
//! # Synchronization (lookahead = one clock edge)
//!
//! The protocol is the degenerate-lookahead corner of conservative PDES:
//! the driver publishes a monotone job number through a [`SeqCell`] (its
//! horizon — no message with an earlier timestamp can ever be sent), each
//! worker executes the edge and publishes the job number back through its
//! commit cell (its lower-bound timestamp), and the driver never touches
//! shard state before every commit has caught up. Horizon and commit
//! publishes are the protocol's null messages and are counted as such
//! (`pdes.null_messages`); wait time on either side accumulates into
//! `pdes.blocked_ns`. The NoC's SerDes + router-pipeline latency
//! ([`Network::lookahead_cycles`]) guarantees a request injected at net
//! edge *t* cannot eject before *t + lookahead*, which is what makes the
//! one-edge window sufficient: everything a worker may observe at edge
//! *t* was already committed by the driver strictly before *t*.
//!
//! # Deterministic merge
//!
//! Trace events are the one shard output that lands in a shared, ordered
//! sink. Workers record them into private [`Tracer`]s configured with the
//! same per-domain clock periods as the driver's, then the driver replays
//! each edge's events in (edge, domain slot, shard index) order — the
//! exact insertion order of the sequential loop — so the ring buffer's
//! drop-oldest behavior, the `dropped` counter, and the exported JSON are
//! byte-identical. Nothing is ever merged by arrival order.
//!
//! # Safety
//!
//! Workers access their shards through raw pointers into the `System`'s
//! vectors. The temporal discipline that makes this sound: a worker
//! dereferences shard pointers only between observing a job publish and
//! issuing its commit publish, and the driver touches shard state only
//! while no job is outstanding. The `SeqCell` publishes are
//! release/acquire pairs, so the handoffs are also proper happens-before
//! edges. The vectors are never resized while a crew exists.

use super::*;
use memnet_engine::pdes::{self, Gate, LaneCtx, PdesCounters, SeqCell};
use memnet_obs::prof::LaneAttr;
use memnet_obs::TraceEvent;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Job kinds the driver dispatches to the crew.
pub(super) const EDGE_CORE: u8 = 0;
pub(super) const EDGE_L2: u8 = 1;
pub(super) const EDGE_DRAM: u8 = 2;
const EDGE_EXIT: u8 = 3;

/// Worker-local tracer capacity: effectively unbounded so a worker never
/// drops an event — ring-buffer eviction (and the `dropped` counter) must
/// happen only at the driver's replay, where sequential semantics apply.
const WORKER_TRACE_CAP: usize = usize::MAX;

/// Compile-time proof that everything a worker dereferences may cross a
/// thread boundary.
#[allow(dead_code)]
fn assert_shard_types_are_send() {
    fn ok<T: Send>() {}
    ok::<Gpu>();
    ok::<HmcDevice>();
    ok::<HmcPort>();
    ok::<TraceEvent>();
}

/// Splits `0..n` into `k` contiguous chunks (the same arithmetic as the
/// SKE's static partition, so shard boundaries are stable and documented).
fn chunks(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let per = n.div_ceil(k.max(1));
    (0..k)
        .map(|w| (w * per).min(n)..((w + 1) * per).min(n))
        .collect()
}

/// Happens-before audit vectors for one crew (`MEMNET_SANITIZE`).
///
/// Each worker records the job numbers it observes, the edges it
/// executes, and the commits it publishes — in its own slots only. The
/// driver reads a worker's slots solely after observing that worker's
/// commit (which the `SeqCell` publish orders after the slot writes) or
/// after the join, so plain per-slot atomics suffice. This is *audit*
/// state, never simulation state: armed or not, report and trace bytes
/// are unchanged, and findings fold into the [`SanitizerReport`] at the
/// phase boundary via [`Sanitizer::record`] without ever advancing the
/// engine-invariant `checks` counter.
///
/// Invariants audited (the protocol's happens-before skeleton):
/// * observed job numbers advance by exactly one (no skipped or repeated
///   dispatch is visible to any worker);
/// * each `EDGE_*` job is executed exactly once per worker;
/// * a worker's commit never runs ahead of the job it observed, and
///   commits advance by exactly one;
/// * the driver touches shard state only after every worker's commit has
///   reached the dispatched job (no premature read);
/// * at phase end, every worker's commit equals the final job number
///   (all shards committed before the driver resumed sequentially).
pub(super) struct HbAudit {
    /// Last job number each worker observed from the job cell.
    last_job: Vec<AtomicU64>,
    /// `EDGE_*` jobs each worker executed.
    executed: Vec<AtomicU64>,
    /// Last commit each worker published.
    last_commit: Vec<AtomicU64>,
    /// Worker saw a job number that was not `previous + 1`.
    non_monotone_jobs: AtomicU64,
    /// Worker executed an edge whose count did not match its job number
    /// (a skipped or doubled execution).
    misexecuted_edges: AtomicU64,
    /// Worker published a commit ahead of its observed job, or one that
    /// was not `previous commit + 1`.
    bad_commits: AtomicU64,
    /// Driver reached shard state while some commit lagged the job.
    premature_reads: AtomicU64,
    /// `EDGE_*` jobs dispatched by the driver (exit excluded).
    dispatched: AtomicU64,
}

// All audit slots are single-writer (a worker writes only its own index;
// the driver writes only `dispatched` and the violation tallies it
// detects itself) and every cross-lane read is ordered by a SeqCell
// publish/observe pair or the thread join, so Relaxed is sound for every
// access below.
impl HbAudit {
    fn new(n_workers: usize) -> HbAudit {
        HbAudit {
            last_job: (0..n_workers).map(|_| AtomicU64::new(0)).collect(),
            executed: (0..n_workers).map(|_| AtomicU64::new(0)).collect(),
            last_commit: (0..n_workers).map(|_| AtomicU64::new(0)).collect(),
            non_monotone_jobs: AtomicU64::new(0),
            misexecuted_edges: AtomicU64::new(0),
            bad_commits: AtomicU64::new(0),
            premature_reads: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
        }
    }

    /// Driver side: one `EDGE_*` job dispatched.
    fn record_dispatch(&self) {
        // memnet-lint: allow(atomic-ordering, driver-only slot; read after the join)
        self.dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker side: lane `w` observed job `job` from the job cell.
    fn observe_job(&self, w: usize, job: u64) {
        // memnet-lint: allow(atomic-ordering, single-writer slot; cross-lane reads ordered by the commit publish)
        let prev = self.last_job[w].swap(job, Ordering::Relaxed);
        if job != prev + 1 {
            // memnet-lint: allow(atomic-ordering, violation tally; read after the join)
            self.non_monotone_jobs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Worker side: lane `w` executed the edge for job `job`.
    fn record_execute(&self, w: usize, job: u64) {
        // memnet-lint: allow(atomic-ordering, single-writer slot; cross-lane reads ordered by the commit publish)
        let done = self.executed[w].fetch_add(1, Ordering::Relaxed) + 1;
        if done != job {
            // memnet-lint: allow(atomic-ordering, violation tally; read after the join)
            self.misexecuted_edges.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Worker side: lane `w` is about to publish commit `commit`.
    fn record_commit(&self, w: usize, commit: u64) {
        // memnet-lint: allow(atomic-ordering, single-writer slot; cross-lane reads ordered by the commit publish)
        let job = self.last_job[w].load(Ordering::Relaxed);
        // memnet-lint: allow(atomic-ordering, single-writer slot; cross-lane reads ordered by the commit publish)
        let prev = self.last_commit[w].swap(commit, Ordering::Relaxed);
        if commit > job || commit != prev + 1 {
            // memnet-lint: allow(atomic-ordering, violation tally; read after the join)
            self.bad_commits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Driver side, after the commit wait of `job`: every worker's commit
    /// must have reached `job` before the driver touches shard state.
    fn audit_driver_read(&self, job: u64) {
        for c in &self.last_commit {
            // memnet-lint: allow(atomic-ordering, read ordered by this worker's commit publish which the driver just observed)
            if c.load(Ordering::Relaxed) < job {
                // memnet-lint: allow(atomic-ordering, violation tally; read after the join)
                self.premature_reads.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Phase-boundary fold, driver side after the join: renders every
    /// audited violation as sanitizer messages. `final_job` is the last
    /// job number dispatched (the exit job).
    fn fold(&self, final_job: u64) -> Vec<String> {
        // memnet-lint: allow(atomic-ordering, all lanes joined; the join synchronizes every slot)
        let read = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut msgs = Vec::new();
        let mut tally = |n: u64, what: &str| {
            if n > 0 {
                msgs.push(format!("hb-audit: {n} {what}"));
            }
        };
        tally(
            read(&self.non_monotone_jobs),
            "non-monotone job observation(s): a worker saw a job number that was not previous+1",
        );
        tally(
            read(&self.misexecuted_edges),
            "misexecuted edge(s): a worker's execute count diverged from its job number (skipped or doubled edge)",
        );
        tally(
            read(&self.bad_commits),
            "bad commit(s): a commit ran ahead of its observed job or skipped a sequence number",
        );
        tally(
            read(&self.premature_reads),
            "premature driver read(s): the driver reached shard state before every commit caught up",
        );
        let dispatched = read(&self.dispatched);
        for (w, (done, commit)) in self
            .executed
            .iter()
            .zip(self.last_commit.iter())
            .enumerate()
        {
            let done = read(done);
            if done != dispatched {
                msgs.push(format!(
                    "hb-audit: worker {w} executed {done} edge(s) of {dispatched} dispatched — exactly-once per edge violated"
                ));
            }
            let commit = read(commit);
            if commit != final_job {
                msgs.push(format!(
                    "hb-audit: worker {w} final commit {commit} != final job {final_job} — shard not fully committed at phase end"
                ));
            }
        }
        msgs
    }
}

/// Shared state between the driver and its workers for one kernel phase.
pub(super) struct ParCrew {
    // Raw shard pointers into the `System`'s device vectors; see the
    // module-level safety contract.
    gpus: *mut Gpu,
    n_gpus: usize,
    hmcs: *mut HmcDevice,
    ports: *mut HmcPort,
    n_hmcs: usize,

    /// Driver → workers: the current job number (monotone).
    job: SeqCell,
    /// Kind of the current job; written before the job publish.
    kind: AtomicU8,
    /// DRAM tick count for [`EDGE_DRAM`] jobs; written before the publish.
    dram_tck: AtomicU64,
    /// Workers → driver: per-worker last finished job number.
    commits: Vec<SeqCell>,

    /// Contiguous GPU index ranges, one per worker.
    gpu_shards: Vec<std::ops::Range<usize>>,
    /// Contiguous HMC index ranges, one per worker.
    hmc_shards: Vec<std::ops::Range<usize>>,
    /// Per-worker trace events from the job just committed, drained by
    /// the driver after the commit wait (so the lock is never contended).
    traces: Vec<Mutex<Vec<TraceEvent>>>,
    /// Clock periods for worker-local tracers; `None` when tracing is off.
    trace_clocks: Option<[(ClockDomain, f64); 3]>,

    /// Happens-before audit vectors; `Some` only when the sanitizer is
    /// armed, so the unsanitized hot path pays nothing.
    hb: Option<HbAudit>,

    pub(super) counters: PdesCounters,
    poisoned: AtomicBool,
    /// Blocked-time accumulator for the driver's commit waits (merged
    /// into the driver lane's profile after the join).
    pub(super) driver_blocked: AtomicU64,
    job_gate: Arc<Gate>,
    commit_gate: Arc<Gate>,
}

// SAFETY: the raw pointers are only dereferenced under the temporal
// discipline documented on the module (worker: between job and commit;
// driver: while no job is outstanding), and every pointed-to type is Send
// (checked above), so shards may be mutated from whichever thread holds
// the protocol's baton.
unsafe impl Send for ParCrew {}
unsafe impl Sync for ParCrew {}

impl ParCrew {
    fn new(sys: &mut System, n_workers: usize) -> ParCrew {
        let job_gate = Arc::new(Gate::new());
        let commit_gate = Arc::new(Gate::new());
        let n_gpus = sys.gpus.len();
        let n_hmcs = sys.hmcs.len();
        ParCrew {
            gpus: sys.gpus.as_mut_ptr(),
            n_gpus,
            hmcs: sys.hmcs.as_mut_ptr(),
            ports: sys.hmc_ports.as_mut_ptr(),
            n_hmcs,
            job: SeqCell::new(job_gate.clone()),
            kind: AtomicU8::new(EDGE_CORE),
            dram_tck: AtomicU64::new(0),
            commits: (0..n_workers)
                .map(|_| SeqCell::new(commit_gate.clone()))
                .collect(),
            gpu_shards: chunks(n_gpus, n_workers),
            hmc_shards: chunks(n_hmcs, n_workers),
            traces: (0..n_workers).map(|_| Mutex::new(Vec::new())).collect(),
            trace_clocks: sys.tracer.as_ref().map(|_| {
                [
                    (
                        ClockDomain::Core,
                        sys.cal.clock(domain::CORE).period_fs() as f64,
                    ),
                    (
                        ClockDomain::L2,
                        sys.cal.clock(domain::L2).period_fs() as f64,
                    ),
                    (
                        ClockDomain::Dram,
                        sys.cal.clock(domain::DRAM).period_fs() as f64,
                    ),
                ]
            }),
            hb: sys.san.as_ref().map(|_| HbAudit::new(n_workers)),
            counters: PdesCounters::new(),
            poisoned: AtomicBool::new(false),
            driver_blocked: AtomicU64::new(0),
            job_gate,
            commit_gate,
        }
    }

    fn driver_ctx(&self) -> LaneCtx<'_> {
        LaneCtx {
            counters: &self.counters,
            blocked: &self.driver_blocked,
            poisoned: &self.poisoned,
        }
    }

    /// Publishes the next job (kind and payload first, then the number).
    fn dispatch(&self, kind: u8, dram_tck: u64) -> u64 {
        let id = self.job.get() + 1;
        // memnet-lint: allow(atomic-ordering, payload store ordered by the job publish below: the SeqCst fetch_max releases it and a worker's job observation acquires it)
        self.kind.store(kind, Ordering::Relaxed);
        // memnet-lint: allow(atomic-ordering, payload store ordered by the job publish below, as for kind)
        self.dram_tck.store(dram_tck, Ordering::Relaxed);
        if kind != EDGE_EXIT {
            if let Some(hb) = &self.hb {
                hb.record_dispatch();
            }
        }
        self.job.publish(id, &self.counters);
        id
    }

    /// Waits until every worker committed `job`. False means a lane
    /// panicked and the crew is poisoned.
    fn wait_commits(&self, job: u64) -> bool {
        let ctx = self.driver_ctx();
        self.commits.iter().all(|c| c.wait_ge(job, &ctx))
    }

    /// Marks the crew poisoned and wakes every parked lane.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.job_gate.notify();
        self.commit_gate.notify();
    }

    /// Dispatches the exit job so workers drain out for the join.
    fn shutdown(&self) {
        self.dispatch(EDGE_EXIT, 0);
    }

    /// One worker lane: execute dispatched edges on the owned shards
    /// until exit or poison. `blocked` is the lane's wait accumulator
    /// from [`pdes::run_actors`].
    fn worker_loop(&self, w: usize, blocked: &AtomicU64) {
        let ctx = LaneCtx {
            counters: &self.counters,
            blocked,
            poisoned: &self.poisoned,
        };
        let mut tracer = self.trace_clocks.as_ref().map(|clocks| {
            let mut t = Tracer::new(WORKER_TRACE_CAP);
            for &(d, fs) in clocks.iter() {
                t.set_clock(d, fs);
            }
            t
        });
        let mut last = 0u64;
        loop {
            let next = last + 1;
            if !self.job.wait_ge(next, &ctx) {
                return; // poisoned: a sibling lane panicked
            }
            last = next;
            if let Some(hb) = &self.hb {
                hb.observe_job(w, next);
            }
            let kind = self.kind.load(Ordering::Acquire);
            if kind == EDGE_EXIT {
                if let Some(hb) = &self.hb {
                    hb.record_commit(w, next);
                }
                self.commits[w].publish(next, &self.counters);
                return;
            }
            // SAFETY: the driver published job `next` and is blocked on
            // our commit, so this worker has exclusive access to its
            // shard ranges (disjoint from every other worker's) until
            // the publish below.
            unsafe {
                match kind {
                    EDGE_CORE => {
                        for g in self.gpu_shards[w].clone() {
                            debug_assert!(g < self.n_gpus);
                            (*self.gpus.add(g)).tick_core_traced(tracer.as_mut());
                        }
                    }
                    EDGE_L2 => {
                        for g in self.gpu_shards[w].clone() {
                            (*self.gpus.add(g)).tick_l2();
                        }
                    }
                    EDGE_DRAM => {
                        let tck = self.dram_tck.load(Ordering::Acquire);
                        for i in self.hmc_shards[w].clone() {
                            debug_assert!(i < self.n_hmcs);
                            let h = &mut *self.hmcs.add(i);
                            h.tick_traced(tck, i as u32, tracer.as_mut());
                            let port = &mut *self.ports.add(i);
                            while let Some(req) = h.pop_completed(tck) {
                                if req.kind.returns_data() {
                                    port.resp_q.push_back(req.response());
                                }
                            }
                        }
                    }
                    _ => unreachable!("unknown parallel job kind {kind}"),
                }
            }
            if let Some(t) = tracer.as_mut() {
                if !t.is_empty() {
                    // memnet-lint: allow(tick-unwrap, trace-slot mutex is uncontended by protocol and never poisoned)
                    let mut slot = self.traces[w].lock().expect("trace slot lock");
                    slot.extend(t.take_events());
                }
            }
            if let Some(hb) = &self.hb {
                hb.record_execute(w, next);
                hb.record_commit(w, next);
            }
            self.commits[w].publish(next, &self.counters);
        }
    }
}

impl System {
    /// Executes one clock edge on the crew: dispatch, wait for every
    /// shard's commit, then replay worker trace events in shard order so
    /// the trace ring sees the sequential loop's exact insertion order.
    pub(super) fn par_edge(&mut self, kind: u8, dram_tck: u64) {
        let crew = Arc::clone(self.par.as_ref().expect("parallel edge without a crew"));
        let job = crew.dispatch(kind, dram_tck);
        if !crew.wait_commits(job) {
            panic!("parallel engine: a worker lane panicked (root cause precedes this on stderr)");
        }
        // The trace replay below is the driver's first touch of
        // shard-produced state for this edge; audit that every commit
        // really caught up before it.
        if let Some(hb) = &crew.hb {
            hb.audit_driver_read(job);
        }
        if let Some(t) = self.tracer.as_mut() {
            for slot in crew.traces.iter() {
                // memnet-lint: allow(tick-unwrap, trace-slot mutex is uncontended by protocol and never poisoned)
                let mut evs = slot.lock().expect("trace slot lock");
                for ev in evs.drain(..) {
                    t.replay(ev);
                }
            }
        }
    }

    /// The parallel kernel phase: spawns the worker crew, re-enters the
    /// sequential [`System::run_kernel_phase`] (which now routes core /
    /// L2 / DRAM edges through [`System::par_edge`]), and folds the
    /// crew's wall-clock attribution into the profiler.
    pub(super) fn run_kernel_phase_parallel(&mut self) -> Fs {
        let n_workers = (self.sim_threads as usize).min(self.gpus.len()).max(1);
        let crew = Arc::new(ParCrew::new(self, n_workers));
        let gates = [crew.job_gate.clone(), crew.commit_gate.clone()];
        let workers: Vec<pdes::WorkerFn<'_, ()>> = (0..n_workers)
            .map(|w| {
                let crew = Arc::clone(&crew);
                Box::new(move |ctx: LaneCtx<'_>| crew.worker_loop(w, ctx.blocked))
                    as pdes::WorkerFn<'_, ()>
            })
            .collect();
        let crew_d = Arc::clone(&crew);
        let this = &mut *self;
        let res = pdes::run_actors(&crew.counters, &gates, workers, move |_ctx| {
            this.par = Some(Arc::clone(&crew_d));
            let r =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| this.run_kernel_phase()));
            this.par = None;
            match r {
                Ok(t) => {
                    crew_d.shutdown();
                    t
                }
                Err(p) => {
                    crew_d.poison();
                    std::panic::resume_unwind(p)
                }
            }
        });
        // Phase boundary: fold the happens-before audit into the
        // sanitizer. Violations only — never a checkpoint, so the `checks`
        // counter (and with it a clean report's bytes) stays identical
        // across engines.
        if let (Some(hb), Some(san)) = (crew.hb.as_ref(), self.san.as_mut()) {
            for msg in hb.fold(crew.job.get()) {
                san.record(msg);
            }
        }
        if let Some(p) = self.prof.as_mut() {
            let (nulls, blocked) = crew.counters.snapshot();
            // memnet-lint: allow(atomic-ordering, read after every lane joined; the join synchronizes)
            let driver_blocked = crew.driver_blocked.load(Ordering::Relaxed);
            p.profiler.add_pdes(
                nulls,
                blocked,
                res.lanes.iter().enumerate().map(|(i, l)| LaneAttr {
                    name: l.name.clone(),
                    wall_ns: l.wall_ns,
                    blocked_ns: if i == 0 {
                        l.blocked_ns.saturating_add(driver_blocked)
                    } else {
                        l.blocked_ns
                    },
                }),
            );
        }
        res.driver
    }
}
