//! Deterministic full-state checkpoints.
//!
//! A [`SystemSnapshot`] captures every bit of mutable simulation state at
//! the quiescent **pre-kernel phase boundary** (after host-pre compute and
//! the host→device copies, before the first kernel cycle) of one run:
//! clock-domain cycle counts, warm CPU caches, HMC bank timing, the
//! network's RNG/packet-slot/fault state, the first-touch page table, the
//! traffic matrix and the fault/recovery counters. Restoring it onto an
//! identically configured [`SimBuilder`](crate::SimBuilder) — verified by
//! the configuration fingerprint — reproduces the rest of the run
//! bit-identically under either [`EngineMode`](crate::EngineMode), so
//! sweeps that share a warmup prefix can fork from one snapshot and a
//! sanitizer violation can be bisected by replay.
//!
//! Deliberately **not** in a snapshot:
//!
//! * configuration — re-derived by rebuilding from the same builder
//!   (regions, graphs, resolved fault plan, clock periods);
//! * pure observers (tracer, metrics registry, profiler) — a restored run
//!   starts them fresh and observes only its own suffix;
//! * in-flight work — the boundary is quiescent by construction (empty
//!   queues, settled credits, drained cubes), which the component
//!   `snapshot_state` methods assert.
//!
//! # Encoding
//!
//! Snapshots serialize to a single JSON document through the
//! `memnet-obs` JSON layer. Every integer is encoded as a **decimal
//! string** and every float as its **IEEE-754 bit pattern in a decimal
//! string**: the obs parser stores JSON numbers as `f64`, which would
//! silently round u64 values above 2^53, and the writer maps non-finite
//! floats to `null`, which would destroy the `RunningStats` ±∞
//! sentinels. String-encoding sidesteps both, keeping the round trip
//! bit-exact.

use memnet_common::stats::RunningStats;
use memnet_common::time::Fs;
use memnet_cpu::{CpuState, DmaState};
use memnet_gpu::cache::CacheState;
use memnet_gpu::{CacheStats, GpuState};
use memnet_hmc::{BankState, HmcState, VaultState};
use memnet_noc::{ChannelState, NetStats, NetworkState};
use memnet_obs::json::{parse, JsonValue};
use memnet_obs::JsonWriter;

use crate::memory::MemoryState;
use crate::sanitize::SanitizerState;

/// Snapshot format version, bumped on any encoding change.
const FORMAT_VERSION: u64 = 1;

/// FNV-1a over `bytes`, finished with the SplitMix64 avalanche so the low
/// bits are as well mixed as the high ones. Used for configuration
/// fingerprints and content-addressed job hashes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Full mutable simulation state at the pre-kernel phase boundary.
///
/// Produced by
/// [`SimBuilder::try_run_checkpointed`](crate::SimBuilder::try_run_checkpointed),
/// consumed by
/// [`SimBuilder::try_run_restored`](crate::SimBuilder::try_run_restored).
/// Serializes losslessly through [`SystemSnapshot::to_json_string`] /
/// [`SystemSnapshot::from_json`].
#[derive(Debug, Clone)]
pub struct SystemSnapshot {
    /// [`SimBuilder::fingerprint`](crate::SimBuilder::fingerprint) of the
    /// configuration that took the snapshot.
    pub(crate) fingerprint: u64,
    /// Opaque caller string (the CLI stores the original run flags here).
    pub(crate) meta: String,
    /// Simulated instant of the boundary, fs.
    pub(crate) now: Fs,
    /// Clock cycle count per domain, in `domain` index order.
    pub(crate) clock_cycles: Vec<u64>,
    /// Elapsed host-compute time of the prefix, fs.
    pub(crate) host_fs: Fs,
    /// Elapsed memcpy time of the prefix, fs.
    pub(crate) memcpy_fs: Fs,
    pub(crate) faults_injected: u64,
    pub(crate) failed_requests: u64,
    pub(crate) rebalanced_ctas: u64,
    pub(crate) lost_gpus: u64,
    pub(crate) steal_events: u64,
    pub(crate) gpus: Vec<GpuState>,
    pub(crate) cpu: CpuState,
    pub(crate) dma: DmaState,
    pub(crate) hmcs: Vec<HmcState>,
    pub(crate) net: NetworkState,
    pub(crate) memory: MemoryState,
    /// Raw traffic-matrix cells, row-major.
    pub(crate) traffic_bytes: Vec<u64>,
    /// Accumulated audit state when the checkpointing run sanitized.
    pub(crate) sanitizer: Option<SanitizerState>,
}

impl SystemSnapshot {
    /// The configuration fingerprint the snapshot was taken under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The opaque caller string stored at checkpoint time.
    pub fn meta(&self) -> &str {
        &self.meta
    }

    /// The simulated instant of the snapshot boundary, femtoseconds.
    pub fn now_fs(&self) -> Fs {
        self.now
    }

    /// Serializes the snapshot as one pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.key("memnet_snapshot");
        w.string(&FORMAT_VERSION.to_string());
        wu(&mut w, "fingerprint", self.fingerprint);
        w.key("meta");
        w.string(&self.meta);
        wu(&mut w, "now", self.now);
        wu_arr(&mut w, "clocks", self.clock_cycles.iter().copied());
        wu(&mut w, "host_fs", self.host_fs);
        wu(&mut w, "memcpy_fs", self.memcpy_fs);
        wu(&mut w, "faults_injected", self.faults_injected);
        wu(&mut w, "failed_requests", self.failed_requests);
        wu(&mut w, "rebalanced_ctas", self.rebalanced_ctas);
        wu(&mut w, "lost_gpus", self.lost_gpus);
        wu(&mut w, "steal_events", self.steal_events);
        w.key("gpus");
        w.begin_array();
        for g in &self.gpus {
            write_gpu(&mut w, g);
        }
        w.end_array();
        w.key("cpu");
        write_cpu(&mut w, &self.cpu);
        w.key("dma");
        w.begin_object();
        wu(&mut w, "next_req", self.dma.next_req);
        wu(&mut w, "bytes_copied", self.dma.bytes_copied);
        w.end_object();
        w.key("hmcs");
        w.begin_array();
        for h in &self.hmcs {
            write_hmc(&mut w, h);
        }
        w.end_array();
        w.key("net");
        write_net(&mut w, &self.net);
        w.key("memory");
        write_memory(&mut w, &self.memory);
        wu_arr(&mut w, "traffic", self.traffic_bytes.iter().copied());
        if let Some(s) = &self.sanitizer {
            w.key("sanitizer");
            write_sanitizer(&mut w, s);
        }
        w.end_object();
        w.finish()
    }

    /// Parses a snapshot serialized by [`SystemSnapshot::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed JSON, a missing or
    /// unsupported format version, or any absent/mistyped field.
    pub fn from_json(text: &str) -> Result<SystemSnapshot, String> {
        let v = parse(text).map_err(|e| format!("snapshot: {e}"))?;
        let version = gu(&v, "memnet_snapshot")?;
        if version != FORMAT_VERSION {
            return Err(format!(
                "snapshot format version {version} is not supported (expected {FORMAT_VERSION})"
            ));
        }
        Ok(SystemSnapshot {
            fingerprint: gu(&v, "fingerprint")?,
            meta: field(&v, "meta")?
                .as_str()
                .ok_or_else(|| "snapshot field 'meta' is not a string".to_string())?
                .to_string(),
            now: gu(&v, "now")?,
            clock_cycles: gu_arr(&v, "clocks")?,
            host_fs: gu(&v, "host_fs")?,
            memcpy_fs: gu(&v, "memcpy_fs")?,
            faults_injected: gu(&v, "faults_injected")?,
            failed_requests: gu(&v, "failed_requests")?,
            rebalanced_ctas: gu(&v, "rebalanced_ctas")?,
            lost_gpus: gu(&v, "lost_gpus")?,
            steal_events: gu(&v, "steal_events")?,
            gpus: garr(&v, "gpus")?
                .iter()
                .map(read_gpu)
                .collect::<Result<_, _>>()?,
            cpu: read_cpu(field(&v, "cpu")?)?,
            dma: {
                let d = field(&v, "dma")?;
                DmaState {
                    next_req: gu(d, "next_req")?,
                    bytes_copied: gu(d, "bytes_copied")?,
                }
            },
            hmcs: garr(&v, "hmcs")?
                .iter()
                .map(read_hmc)
                .collect::<Result<_, _>>()?,
            net: read_net(field(&v, "net")?)?,
            memory: read_memory(field(&v, "memory")?)?,
            traffic_bytes: gu_arr(&v, "traffic")?,
            sanitizer: match v.get("sanitizer") {
                Some(s) => Some(read_sanitizer(s)?),
                None => None,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Write helpers — integers as decimal strings, floats as bit patterns.
// ---------------------------------------------------------------------------

fn wu(w: &mut JsonWriter, key: &str, v: u64) {
    w.key(key);
    w.string(&v.to_string());
}

fn wf(w: &mut JsonWriter, key: &str, v: f64) {
    w.key(key);
    w.string(&v.to_bits().to_string());
}

fn wu_arr(w: &mut JsonWriter, key: &str, vs: impl Iterator<Item = u64>) {
    w.key(key);
    w.begin_array();
    for v in vs {
        w.string(&v.to_string());
    }
    w.end_array();
}

fn write_running(w: &mut JsonWriter, key: &str, s: &RunningStats) {
    let (count, sum, min, max) = s.raw();
    w.key(key);
    w.begin_object();
    wu(w, "count", count);
    wf(w, "sum", sum);
    wf(w, "min", min);
    wf(w, "max", max);
    w.end_object();
}

fn write_cache_stats(w: &mut JsonWriter, s: &CacheStats) {
    wu(w, "read_hits", s.read_hits);
    wu(w, "read_misses", s.read_misses);
    wu(w, "write_hits", s.write_hits);
    wu(w, "write_misses", s.write_misses);
}

fn write_cache(w: &mut JsonWriter, c: &CacheState) {
    w.begin_object();
    // (tag, valid, lru) triplets, flattened set-major.
    w.key("ways");
    w.begin_array();
    for &(tag, valid, lru) in &c.ways {
        w.string(&tag.to_string());
        w.string(if valid { "1" } else { "0" });
        w.string(&lru.to_string());
    }
    w.end_array();
    wu(w, "tick", c.tick);
    write_cache_stats(w, &c.stats);
    w.end_object();
}

fn write_gpu(w: &mut JsonWriter, g: &GpuState) {
    w.begin_object();
    w.key("dead");
    w.boolean(g.dead);
    wu(w, "core_cycle", g.core_cycle);
    wu(w, "next_req", g.next_req);
    wu(w, "mem_reqs", g.mem_reqs);
    w.key("l2");
    write_cache(w, &g.l2);
    w.end_object();
}

fn write_cpu(w: &mut JsonWriter, c: &CpuState) {
    w.begin_object();
    wu(w, "cycle", c.cycle);
    wu(w, "compute_until", c.compute_until);
    wu(w, "next_req", c.next_req);
    wu(w, "ops", c.stats.ops);
    wu(w, "mem_reads", c.stats.mem_reads);
    wu(w, "busy_cycles", c.stats.busy_cycles);
    w.key("l1");
    write_cache(w, &c.l1);
    w.key("l2");
    write_cache(w, &c.l2);
    w.end_object();
}

fn write_hmc(w: &mut JsonWriter, h: &HmcState) {
    w.begin_object();
    wu(w, "seq", h.seq);
    wu_arr(w, "stalled_until", h.stalled_until.iter().copied());
    wu(w, "stalls", h.stalls);
    w.key("vaults");
    w.begin_array();
    for v in &h.vaults {
        w.begin_object();
        // Per bank: [open_row ("-" = closed), next_cmd, activated_at,
        // write_recovery_until, next_refresh], flattened.
        w.key("banks");
        w.begin_array();
        for b in &v.banks {
            match b.open_row {
                Some(r) => w.string(&r.to_string()),
                None => w.string("-"),
            }
            w.string(&b.next_cmd.to_string());
            w.string(&b.activated_at.to_string());
            w.string(&b.write_recovery_until.to_string());
            w.string(&b.next_refresh.to_string());
        }
        w.end_array();
        wu(w, "bus_free_at", v.bus_free_at);
        wu(w, "row_hits", v.stats.row_hits);
        wu(w, "row_misses", v.stats.row_misses);
        wu(w, "served", v.stats.served);
        wu(w, "bytes", v.stats.bytes);
        wu(w, "refreshes", v.stats.refreshes);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

fn write_net(w: &mut JsonWriter, n: &NetworkState) {
    w.begin_object();
    wu(w, "cycle", n.cycle);
    wu(w, "seq", n.seq);
    wu(w, "rng_state", n.rng_state);
    wu(w, "packet_slots", n.packet_slots);
    wu_arr(w, "free_pids", n.free_pids.iter().map(|&p| u64::from(p)));
    w.key("link_up");
    w.begin_array();
    for &up in &n.link_up {
        w.boolean(up);
    }
    w.end_array();
    // Per channel: [up, degrade, busy_until, bytes_moved, busy_cycles].
    w.key("channels");
    w.begin_array();
    for c in &n.channels {
        w.string(if c.up { "1" } else { "0" });
        w.string(&c.degrade.to_string());
        w.string(&c.busy_until.to_string());
        w.string(&c.bytes_moved.to_string());
        w.string(&c.busy_cycles.to_string());
    }
    w.end_array();
    w.key("stats");
    w.begin_object();
    wu(w, "delivered", n.stats.delivered);
    write_running(w, "latency", &n.stats.latency);
    write_running(w, "hops", &n.stats.hops);
    wu(w, "nonminimal", n.stats.nonminimal);
    wu(w, "passthrough", n.stats.passthrough);
    wu(w, "bytes_delivered", n.stats.bytes_delivered);
    wu(w, "flits_injected", n.stats.flits_injected);
    wu(w, "reroutes", n.stats.reroutes);
    wu(w, "retries", n.stats.retries);
    wu(w, "dead_letters", n.stats.dead_letters);
    wu(w, "packets_injected", n.stats.packets_injected);
    wu(w, "flit_hops", n.stats.flit_hops);
    w.end_object();
    w.end_object();
}

fn write_memory(w: &mut JsonWriter, m: &MemoryState) {
    w.begin_object();
    // (vpage, ppage) pairs, flattened in ascending key order.
    wu_arr(
        w,
        "page_table",
        m.page_table.iter().flat_map(|&(v, p)| [v, p]),
    );
    wu_arr(w, "next_seq", m.next_seq.iter().copied());
    wu(w, "rng_state", m.rng_state);
    wu(w, "rr_next", m.rr_next);
    w.end_object();
}

fn write_sanitizer(w: &mut JsonWriter, s: &SanitizerState) {
    w.begin_object();
    wu(w, "checks", s.checks);
    w.key("violations");
    w.begin_array();
    for v in &s.violations {
        w.string(v);
    }
    w.end_array();
    wu(w, "dropped", s.dropped);
    wu(w, "ctas_launched", s.ctas_launched);
    wu(w, "ctas_dropped", s.ctas_dropped);
    w.end_object();
}

// ---------------------------------------------------------------------------
// Read helpers
// ---------------------------------------------------------------------------

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key)
        .ok_or_else(|| format!("snapshot missing field '{key}'"))
}

fn gu(v: &JsonValue, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_str()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("snapshot field '{key}' is not a u64 decimal string"))
}

fn gf(v: &JsonValue, key: &str) -> Result<f64, String> {
    Ok(f64::from_bits(gu(v, key)?))
}

fn garr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], String> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| format!("snapshot field '{key}' is not an array"))
}

fn gu_arr(v: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
    garr(v, key)?
        .iter()
        .map(|e| {
            e.as_str()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("snapshot array '{key}' holds a non-u64 element"))
        })
        .collect()
}

fn read_running(v: &JsonValue, key: &str) -> Result<RunningStats, String> {
    let s = field(v, key)?;
    Ok(RunningStats::from_raw(
        gu(s, "count")?,
        gf(s, "sum")?,
        gf(s, "min")?,
        gf(s, "max")?,
    ))
}

fn read_cache_stats(v: &JsonValue) -> Result<CacheStats, String> {
    Ok(CacheStats {
        read_hits: gu(v, "read_hits")?,
        read_misses: gu(v, "read_misses")?,
        write_hits: gu(v, "write_hits")?,
        write_misses: gu(v, "write_misses")?,
    })
}

fn read_cache(v: &JsonValue) -> Result<CacheState, String> {
    let flat = gu_arr(v, "ways")?;
    if flat.len() % 3 != 0 {
        return Err("snapshot cache 'ways' length is not a multiple of 3".into());
    }
    Ok(CacheState {
        ways: flat
            .chunks_exact(3)
            .map(|c| (c[0], c[1] != 0, c[2]))
            .collect(),
        tick: gu(v, "tick")?,
        stats: read_cache_stats(v)?,
    })
}

fn read_gpu(v: &JsonValue) -> Result<GpuState, String> {
    Ok(GpuState {
        dead: field(v, "dead")?
            .as_bool()
            .ok_or_else(|| "snapshot field 'dead' is not a bool".to_string())?,
        core_cycle: gu(v, "core_cycle")?,
        next_req: gu(v, "next_req")?,
        mem_reqs: gu(v, "mem_reqs")?,
        l2: read_cache(field(v, "l2")?)?,
    })
}

fn read_cpu(v: &JsonValue) -> Result<CpuState, String> {
    Ok(CpuState {
        cycle: gu(v, "cycle")?,
        compute_until: gu(v, "compute_until")?,
        next_req: gu(v, "next_req")?,
        stats: memnet_cpu::CpuStats {
            ops: gu(v, "ops")?,
            mem_reads: gu(v, "mem_reads")?,
            busy_cycles: gu(v, "busy_cycles")?,
        },
        l1: read_cache(field(v, "l1")?)?,
        l2: read_cache(field(v, "l2")?)?,
    })
}

fn read_hmc(v: &JsonValue) -> Result<HmcState, String> {
    let mut vaults = Vec::new();
    for vv in garr(v, "vaults")? {
        let flat = gu_arr_opt_rows(vv, "banks")?;
        if flat.len() % 5 != 0 {
            return Err("snapshot vault 'banks' length is not a multiple of 5".into());
        }
        vaults.push(VaultState {
            banks: flat
                .chunks_exact(5)
                .map(|c| BankState {
                    open_row: c[0],
                    next_cmd: c[1].unwrap_or(0),
                    activated_at: c[2].unwrap_or(0),
                    write_recovery_until: c[3].unwrap_or(0),
                    next_refresh: c[4].unwrap_or(0),
                })
                .collect(),
            bus_free_at: gu(vv, "bus_free_at")?,
            stats: memnet_hmc::vault::VaultStats {
                row_hits: gu(vv, "row_hits")?,
                row_misses: gu(vv, "row_misses")?,
                served: gu(vv, "served")?,
                bytes: gu(vv, "bytes")?,
                refreshes: gu(vv, "refreshes")?,
            },
        });
    }
    Ok(HmcState {
        seq: gu(v, "seq")?,
        stalled_until: gu_arr(v, "stalled_until")?,
        stalls: gu(v, "stalls")?,
        vaults,
    })
}

/// Like [`gu_arr`] but `"-"` elements parse to `None` (closed bank rows).
fn gu_arr_opt_rows(v: &JsonValue, key: &str) -> Result<Vec<Option<u64>>, String> {
    garr(v, key)?
        .iter()
        .map(|e| match e.as_str() {
            Some("-") => Ok(None),
            Some(s) => s
                .parse()
                .map(Some)
                .map_err(|_| format!("snapshot array '{key}' holds a non-u64 element")),
            None => Err(format!("snapshot array '{key}' holds a non-string element")),
        })
        .collect()
}

fn read_net(v: &JsonValue) -> Result<NetworkState, String> {
    let chan_flat = gu_arr_opt_rows(v, "channels")?;
    if chan_flat.len() % 5 != 0 {
        return Err("snapshot net 'channels' length is not a multiple of 5".into());
    }
    let channels = chan_flat
        .chunks_exact(5)
        .map(|c| {
            let deg = c[1].unwrap_or(1);
            Ok(ChannelState {
                up: c[0].unwrap_or(0) != 0,
                degrade: u32::try_from(deg)
                    .map_err(|_| "snapshot channel degrade out of u32 range".to_string())?,
                busy_until: c[2].unwrap_or(0),
                bytes_moved: c[3].unwrap_or(0),
                busy_cycles: c[4].unwrap_or(0),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let link_up = garr(v, "link_up")?
        .iter()
        .map(|e| {
            e.as_bool()
                .ok_or_else(|| "snapshot 'link_up' holds a non-bool element".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let s = field(v, "stats")?;
    Ok(NetworkState {
        cycle: gu(v, "cycle")?,
        seq: gu(v, "seq")?,
        rng_state: gu(v, "rng_state")?,
        packet_slots: gu(v, "packet_slots")?,
        free_pids: gu_arr(v, "free_pids")?
            .into_iter()
            .map(|p| {
                u32::try_from(p).map_err(|_| "snapshot packet id out of u32 range".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?,
        link_up,
        channels,
        stats: NetStats {
            delivered: gu(s, "delivered")?,
            latency: read_running(s, "latency")?,
            hops: read_running(s, "hops")?,
            nonminimal: gu(s, "nonminimal")?,
            passthrough: gu(s, "passthrough")?,
            bytes_delivered: gu(s, "bytes_delivered")?,
            flits_injected: gu(s, "flits_injected")?,
            reroutes: gu(s, "reroutes")?,
            retries: gu(s, "retries")?,
            dead_letters: gu(s, "dead_letters")?,
            packets_injected: gu(s, "packets_injected")?,
            flit_hops: gu(s, "flit_hops")?,
        },
    })
}

fn read_memory(v: &JsonValue) -> Result<MemoryState, String> {
    let flat = gu_arr(v, "page_table")?;
    if flat.len() % 2 != 0 {
        return Err("snapshot 'page_table' length is not even".into());
    }
    Ok(MemoryState {
        page_table: flat.chunks_exact(2).map(|c| (c[0], c[1])).collect(),
        next_seq: gu_arr(v, "next_seq")?,
        rng_state: gu(v, "rng_state")?,
        rr_next: gu(v, "rr_next")?,
    })
}

fn read_sanitizer(v: &JsonValue) -> Result<SanitizerState, String> {
    Ok(SanitizerState {
        checks: gu(v, "checks")?,
        violations: garr(v, "violations")?
            .iter()
            .map(|e| {
                e.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "snapshot 'violations' holds a non-string".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?,
        dropped: gu(v, "dropped")?,
        ctas_launched: gu(v, "ctas_launched")?,
        ctas_dropped: gu(v, "ctas_dropped")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_is_stable_and_spread() {
        let a = fnv1a64(b"org=UMN;seed=1");
        let b = fnv1a64(b"org=UMN;seed=2");
        assert_ne!(a, b);
        assert_eq!(a, fnv1a64(b"org=UMN;seed=1"), "pure function of bytes");
        // One-byte difference flips roughly half the output bits.
        assert!((a ^ b).count_ones() > 8);
    }

    fn sample_snapshot() -> SystemSnapshot {
        SystemSnapshot {
            fingerprint: u64::MAX - 3,
            meta: "run --org UMN \"quoted\"\nline2".into(),
            now: (1u64 << 60) + 7,
            clock_cycles: vec![1, 2, 3, 4, 5],
            host_fs: 42,
            memcpy_fs: 0,
            faults_injected: 1,
            failed_requests: 2,
            rebalanced_ctas: 3,
            lost_gpus: 4,
            steal_events: 5,
            gpus: vec![GpuState {
                dead: true,
                core_cycle: 9,
                next_req: 1 << 55,
                mem_reqs: 11,
                l2: CacheState {
                    ways: vec![(u64::MAX, true, 3), (7, false, 0)],
                    tick: 12,
                    stats: CacheStats {
                        read_hits: 1,
                        read_misses: 2,
                        write_hits: 3,
                        write_misses: 4,
                    },
                },
            }],
            cpu: CpuState {
                cycle: 100,
                compute_until: 90,
                next_req: 5,
                stats: memnet_cpu::CpuStats {
                    ops: 6,
                    mem_reads: 7,
                    busy_cycles: 8,
                },
                l1: CacheState::default(),
                l2: CacheState::default(),
            },
            dma: DmaState {
                next_req: 2,
                bytes_copied: 1 << 54,
            },
            hmcs: vec![HmcState {
                seq: 3,
                stalled_until: vec![0, 9],
                stalls: 1,
                vaults: vec![VaultState {
                    banks: vec![
                        BankState {
                            open_row: Some(123),
                            next_cmd: 4,
                            activated_at: 5,
                            write_recovery_until: 6,
                            next_refresh: 7,
                        },
                        BankState::default(),
                    ],
                    bus_free_at: 77,
                    stats: memnet_hmc::vault::VaultStats {
                        row_hits: 1,
                        row_misses: 2,
                        served: 3,
                        bytes: 4,
                        refreshes: 5,
                    },
                }],
            }],
            net: NetworkState {
                cycle: 1000,
                seq: 2000,
                rng_state: u64::MAX,
                packet_slots: 4,
                free_pids: vec![3, 1, 0, 2],
                link_up: vec![true, false],
                channels: vec![ChannelState {
                    up: false,
                    degrade: 4,
                    busy_until: 8,
                    bytes_moved: 16,
                    busy_cycles: 32,
                }],
                stats: NetStats {
                    latency: RunningStats::from_raw(2, 30.5, 10.25, 20.25),
                    ..NetStats::default()
                },
            },
            memory: MemoryState {
                page_table: vec![(1, 2), (1 << 53, (1 << 53) + 1)],
                next_seq: vec![4, 5],
                rng_state: 6,
                rr_next: 7,
            },
            traffic_bytes: vec![0, 1 << 62, 3],
            sanitizer: Some(SanitizerState {
                checks: 8,
                violations: vec!["phase: net: lost a credit".into()],
                dropped: 0,
                ctas_launched: 9,
                ctas_dropped: 1,
            }),
        }
    }

    #[test]
    fn snapshot_json_round_trips_bit_exactly() {
        let snap = sample_snapshot();
        let json = snap.to_json_string();
        let back = SystemSnapshot::from_json(&json).expect("parse back");
        // Struct has no PartialEq (component states carry stats); compare
        // through re-serialization, which covers every field.
        assert_eq!(back.to_json_string(), json);
        assert_eq!(back.fingerprint(), snap.fingerprint());
        assert_eq!(back.meta(), snap.meta());
        assert_eq!(back.now_fs(), snap.now_fs());
        // Spot-check the hazards the string encoding exists for: u64s
        // above 2^53 and empty RunningStats ±∞ sentinels.
        assert_eq!(back.gpus[0].next_req, 1 << 55);
        assert_eq!(back.traffic_bytes[1], 1 << 62);
        let (count, _, min, max) = back.net.stats.hops.raw();
        assert_eq!(count, 0);
        assert!(min.is_infinite() && min > 0.0, "+∞ sentinel survives");
        assert!(max.is_infinite() && max < 0.0, "-∞ sentinel survives");
    }

    #[test]
    fn malformed_snapshots_are_typed_errors() {
        assert!(SystemSnapshot::from_json("not json").is_err());
        assert!(SystemSnapshot::from_json("{}")
            .unwrap_err()
            .contains("memnet_snapshot"));
        let v2 = r#"{"memnet_snapshot":"2"}"#;
        assert!(SystemSnapshot::from_json(v2)
            .unwrap_err()
            .contains("version"));
        // Numeric fields must be strings, not JSON numbers.
        let bad = sample_snapshot().to_json_string().replace(
            "\"now\": \"1152921504606846983\"",
            "\"now\": 1152921504606846983",
        );
        assert!(SystemSnapshot::from_json(&bad).unwrap_err().contains("now"));
    }
}
