//! Fault-plan resolution and the on-disk JSON plan format.
//!
//! A [`FaultPlan`](memnet_common::FaultPlan) is abstract — link *classes*
//! plus ordinals, HMC/vault indices, GPU ids. This module resolves it
//! against the concrete system a [`SimBuilder`](crate::SimBuilder) built:
//! each event becomes a [`ResolvedFault`] pinned to the first clock edge
//! of its owning domain at or after the event timestamp. Because that
//! edge is pure clock arithmetic, both engine modes apply every fault at
//! the identical simulated instant and produce bit-identical reports.
//!
//! The JSON format (for `memnet run --faults plan.json`):
//!
//! ```json
//! { "events": [
//!   { "at_fs": 1000000, "kind": "link-down", "class": "hmc-hmc", "ordinal": 0 },
//!   { "at_ns": 2.5, "kind": "link-degrade", "class": "pcie", "ordinal": 1, "factor": 4 },
//!   { "at_fs": 3000000, "kind": "vault-stall", "hmc": 0, "vault": 3, "stall_tcks": 512 },
//!   { "at_fs": 4000000, "kind": "gpu-loss", "gpu": 1 }
//! ] }
//! ```
//!
//! Timestamps are femtoseconds (`at_fs`) or nanoseconds (`at_ns`);
//! `link-up` takes the same fields as `link-down`.

use memnet_common::faults::{FaultKind, LinkClass};
use memnet_common::time::{ns_to_fs, Fs};
use memnet_common::FaultPlan;
use memnet_noc::Network;
use memnet_obs::json::{parse, JsonValue};
use memnet_obs::JsonWriter;

/// What a resolved fault does to the live system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Cut network link (dense link index).
    LinkDown(usize),
    /// Restore network link.
    LinkUp(usize),
    /// Multiply a link's serialization latency (1 restores it).
    LinkDegrade(usize, u32),
    /// Freeze one vault of one cube for a stretch of DRAM clocks.
    VaultStall {
        hmc: usize,
        vault: u64,
        stall_tcks: u64,
    },
    /// Kill a GPU and rebalance its CTAs onto survivors.
    GpuLoss(usize),
}

/// A fault pinned to a concrete target and an owner-domain clock edge.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedFault {
    /// First owner-domain edge at or after the plan timestamp.
    pub edge_fs: Fs,
    /// Owning clock domain (`domain::NET`, `domain::DRAM`, `domain::CORE`).
    pub owner: usize,
    pub action: FaultAction,
    /// Stable kind name for trace events.
    pub kind: &'static str,
    /// Kind-specific target for trace events (link index, HMC id, GPU id).
    pub target: u64,
    /// Kind-specific detail for trace events (factor, stall tCKs, vault).
    pub detail: u64,
}

/// Owning clock domain per fault category: link faults apply on network
/// edges, vault stalls on DRAM edges, GPU loss on core edges.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultOwners {
    pub net: usize,
    pub dram: usize,
    pub core: usize,
}

/// Resolves `plan` against a built system. `periods[d]` is the period of
/// clock domain `d`; `owners` maps each fault category to its owning
/// domain. Events whose link class has no population in this
/// organization are dropped and counted in the returned skip tally.
pub(crate) fn resolve_plan(
    plan: &FaultPlan,
    net: &Network,
    n_hmcs: usize,
    n_gpus: usize,
    owners: FaultOwners,
    periods: &[Fs],
) -> (Vec<ResolvedFault>, u64) {
    let mut out = Vec::with_capacity(plan.events().len());
    let mut skipped = 0u64;
    for ev in plan.events() {
        let (owner, action, target, detail) = match &ev.kind {
            FaultKind::LinkDown { class, ordinal } => {
                let Some(li) = net.resolve_link(*class, *ordinal) else {
                    skipped += 1;
                    continue;
                };
                (owners.net, FaultAction::LinkDown(li), li as u64, 0)
            }
            FaultKind::LinkUp { class, ordinal } => {
                let Some(li) = net.resolve_link(*class, *ordinal) else {
                    skipped += 1;
                    continue;
                };
                (owners.net, FaultAction::LinkUp(li), li as u64, 0)
            }
            FaultKind::LinkDegrade {
                class,
                ordinal,
                factor,
            } => {
                let Some(li) = net.resolve_link(*class, *ordinal) else {
                    skipped += 1;
                    continue;
                };
                (
                    owners.net,
                    FaultAction::LinkDegrade(li, *factor),
                    li as u64,
                    u64::from(*factor),
                )
            }
            FaultKind::VaultStall {
                hmc,
                vault,
                stall_tcks,
            } => {
                let h = (*hmc % n_hmcs.max(1) as u64) as usize;
                (
                    owners.dram,
                    FaultAction::VaultStall {
                        hmc: h,
                        vault: *vault,
                        stall_tcks: *stall_tcks,
                    },
                    h as u64,
                    *stall_tcks,
                )
            }
            FaultKind::GpuLoss { gpu } => {
                let g = (*gpu % n_gpus.max(1) as u64) as usize;
                (owners.core, FaultAction::GpuLoss(g), g as u64, 0)
            }
        };
        let period = periods[owner];
        out.push(ResolvedFault {
            edge_fs: ev.at_fs.div_ceil(period) * period,
            owner,
            action,
            kind: ev.kind.name(),
            target,
            detail,
        });
    }
    // The plan is sorted by at_fs; snapping to owner edges can reorder
    // events across domains with different periods. Stable sort keeps
    // same-edge events in plan order.
    out.sort_by_key(|f| f.edge_fs);
    (out, skipped)
}

/// Serializes a plan to the JSON format accepted by [`plan_from_json`].
pub fn plan_to_json(plan: &FaultPlan) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.key("events");
    w.begin_array();
    for ev in plan.events() {
        w.begin_object();
        w.field("at_fs", &ev.at_fs);
        w.field("kind", ev.kind.name());
        match &ev.kind {
            FaultKind::LinkDown { class, ordinal } | FaultKind::LinkUp { class, ordinal } => {
                w.field("class", class.name());
                w.field("ordinal", ordinal);
            }
            FaultKind::LinkDegrade {
                class,
                ordinal,
                factor,
            } => {
                w.field("class", class.name());
                w.field("ordinal", ordinal);
                w.field("factor", &u64::from(*factor));
            }
            FaultKind::VaultStall {
                hmc,
                vault,
                stall_tcks,
            } => {
                w.field("hmc", hmc);
                w.field("vault", vault);
                w.field("stall_tcks", stall_tcks);
            }
            FaultKind::GpuLoss { gpu } => {
                w.field("gpu", gpu);
            }
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn get_u64(ev: &JsonValue, key: &str) -> Result<u64, String> {
    ev.get(key)
        .and_then(JsonValue::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("fault event missing numeric field '{key}'"))
}

fn get_class(ev: &JsonValue) -> Result<LinkClass, String> {
    let s = ev
        .get("class")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "link fault missing 'class'".to_string())?;
    LinkClass::parse(s).ok_or_else(|| format!("unknown link class '{s}'"))
}

/// Parses a JSON fault plan.
///
/// # Errors
///
/// Returns a human-readable message on malformed JSON, unknown kinds or
/// classes, and missing fields.
pub fn plan_from_json(s: &str) -> Result<FaultPlan, String> {
    let v = parse(s).map_err(|e| format!("fault plan: {e}"))?;
    let events = v
        .get("events")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "fault plan must have an 'events' array".to_string())?;
    let mut plan = FaultPlan::new();
    for ev in events {
        let at_fs = if let Some(fs) = ev.get("at_fs").and_then(JsonValue::as_f64) {
            fs as Fs
        } else if let Some(ns) = ev.get("at_ns").and_then(JsonValue::as_f64) {
            ns_to_fs(ns)
        } else {
            return Err("fault event needs 'at_fs' or 'at_ns'".to_string());
        };
        let kind = ev
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "fault event missing 'kind'".to_string())?;
        let kind = match kind {
            "link-down" => FaultKind::LinkDown {
                class: get_class(ev)?,
                ordinal: get_u64(ev, "ordinal")?,
            },
            "link-up" => FaultKind::LinkUp {
                class: get_class(ev)?,
                ordinal: get_u64(ev, "ordinal")?,
            },
            "link-degrade" => FaultKind::LinkDegrade {
                class: get_class(ev)?,
                ordinal: get_u64(ev, "ordinal")?,
                factor: get_u64(ev, "factor")?.clamp(1, u64::from(u32::MAX)) as u32,
            },
            "vault-stall" => FaultKind::VaultStall {
                hmc: get_u64(ev, "hmc")?,
                vault: get_u64(ev, "vault")?,
                stall_tcks: get_u64(ev, "stall_tcks")?,
            },
            "gpu-loss" => FaultKind::GpuLoss {
                gpu: get_u64(ev, "gpu")?,
            },
            other => return Err(format!("unknown fault kind '{other}'")),
        };
        plan.push(at_fs, kind);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_json_round_trips() {
        let plan = FaultPlan::random(7, 12, 4, 1_000_000_000);
        let json = plan_to_json(&plan);
        let back = plan_from_json(&json).expect("valid");
        assert_eq!(plan, back);
    }

    #[test]
    fn at_ns_is_accepted() {
        let plan = plan_from_json(r#"{"events":[{"at_ns":1.5,"kind":"gpu-loss","gpu":2}]}"#)
            .expect("valid");
        assert_eq!(plan.events()[0].at_fs, 1_500_000);
        assert_eq!(plan.events()[0].kind, FaultKind::GpuLoss { gpu: 2 });
    }

    #[test]
    fn malformed_plans_are_typed_errors() {
        assert!(plan_from_json("not json").is_err());
        assert!(
            plan_from_json(r#"{"events":[{"kind":"gpu-loss","gpu":0}]}"#)
                .unwrap_err()
                .contains("at_fs")
        );
        assert!(
            plan_from_json(r#"{"events":[{"at_fs":1,"kind":"meteor"}]}"#)
                .unwrap_err()
                .contains("meteor")
        );
        assert!(plan_from_json(
            r#"{"events":[{"at_fs":1,"kind":"link-down","class":"warp","ordinal":0}]}"#
        )
        .unwrap_err()
        .contains("warp"));
    }
}
