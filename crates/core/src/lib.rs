//! The paper's contribution: Scalable Kernel Execution (SKE) and
//! memory-network system organizations for multi-GPU systems.
//!
//! This crate composes the substrates — `memnet-noc` (the interconnect),
//! `memnet-hmc` (memory cubes), `memnet-gpu` / `memnet-cpu` (devices) and
//! `memnet-workloads` (Table II) — into runnable full systems:
//!
//! * [`ske`] — the virtual-GPU runtime: CTA partitioning policies
//!   (static chunked / round-robin / stealing, Section III-B);
//! * [`memory`] — the shared virtual address space, page table and random
//!   page placement (Section III-C);
//! * [`system`] — the Table III organizations (PCIe, PCIe-ZC, CMN, CMN-ZC,
//!   GMN, GMN-ZC, UMN), the multi-clock engine, and [`SimReport`].
//!
//! # Example
//!
//! ```
//! use memnet_core::{Organization, SimBuilder};
//! use memnet_workloads::Workload;
//!
//! let report = SimBuilder::new(Organization::Umn)
//!     .gpus(2)
//!     .sms_per_gpu(2)
//!     .workload(Workload::VecAdd.spec_small())
//!     .run();
//! assert!(report.kernel_ns > 0.0);
//! assert_eq!(report.memcpy_ns, 0.0); // UMN shares memory — no copies
//! ```

pub mod faults;
pub mod memory;
pub mod profile;
pub mod sanitize;
pub mod ske;
pub mod snapshot;
pub mod system;

pub use faults::{plan_from_json, plan_to_json};
pub use memory::{MemoryLayout, PlacementPolicy, HOST_BASE};
pub use profile::{DomainProfile, Heatmap, ProfileHist, ProfileReport};
pub use sanitize::{SanitizeMode, SanitizerReport};
pub use ske::CtaPolicy;
pub use snapshot::{fnv1a64, SystemSnapshot};
pub use system::{EngineMode, GpuSummary, Organization, SimBuilder, SimError, SimReport};
