//! Runtime invariant sanitizer (`MEMNET_SANITIZE`).
//!
//! When enabled, the engine audits conservation laws at domain edges
//! while the simulation runs:
//!
//! * **NoC packet conservation** — every injected packet is delivered,
//!   in flight, or dead-lettered (checked every network tick, O(1)).
//! * **Link credit conservation** — no credit counter overdrawn or
//!   double-returned; all credits restored once the fabric settles
//!   (full structural audit at phase boundaries).
//! * **CTA accounting** — CTAs launched equal CTAs completed plus CTAs
//!   dropped with a dead GPU when no survivor could adopt them.
//! * **Byte accounting** — each memcpy phase moves exactly the bytes
//!   requested (fail-fast synthesized responses included).
//! * **Calendar monotonicity** — every clock stays on its
//!   `next_fs == cycles * period_fs` edge grid through park/wake.
//!
//! Findings are recorded in a [`SanitizerReport`] attached to
//! [`SimReport`](crate::SimReport); in `fatal` mode the run panics at
//! the end instead, so tests fail loudly. Only the phase-boundary
//! checkpoints advance the check counter — per-tick audits record
//! violations but never counts, keeping clean reports bit-identical
//! across [`EngineMode`](crate::EngineMode)s (the event-driven engine
//! skips idle ticks, so tick counts are engine-variant).

/// Hard cap on recorded violation messages; the rest are only counted.
/// A broken invariant usually fires every tick — the first few messages
/// locate the bug, the remaining millions would just burn memory.
pub const MAX_VIOLATIONS: usize = 64;

/// What the sanitizer should do, resolved from `MEMNET_SANITIZE` or
/// [`SimBuilder::sanitize`](crate::SimBuilder::sanitize).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SanitizeMode {
    /// No checks, zero overhead (the default).
    #[default]
    Off,
    /// Check invariants and attach a [`SanitizerReport`] to the report.
    Record,
    /// Like [`SanitizeMode::Record`], but panic at the end of the run if
    /// any violation was found — for tests and CI.
    Fatal,
}

impl SanitizeMode {
    /// Resolves the mode from the `MEMNET_SANITIZE` environment variable:
    /// `1`/`on`/`true` record, `fatal` records and panics on violations,
    /// anything else (or unset) is off. An explicit
    /// [`SimBuilder::sanitize`](crate::SimBuilder::sanitize) call wins.
    pub fn from_env() -> SanitizeMode {
        match std::env::var("MEMNET_SANITIZE").ok().as_deref() {
            Some("1" | "on" | "true") => SanitizeMode::Record,
            Some("fatal") => SanitizeMode::Fatal,
            _ => SanitizeMode::Off,
        }
    }

    /// True unless the mode is [`SanitizeMode::Off`].
    #[inline]
    pub fn enabled(self) -> bool {
        self != SanitizeMode::Off
    }
}

/// Invariant-audit results for one run, attached to
/// [`SimReport::sanitizer`](crate::SimReport::sanitizer) when the
/// sanitizer was enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Phase-boundary checkpoints executed (engine-invariant).
    pub checks: u64,
    /// Violation messages, at most [`MAX_VIOLATIONS`]; empty = clean.
    pub violations: Vec<String>,
    /// Violations found beyond the message cap.
    pub dropped: u64,
}

impl SanitizerReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }
}

/// Live sanitizer state carried by the running `System`.
#[derive(Debug)]
pub(crate) struct Sanitizer {
    fatal: bool,
    checks: u64,
    violations: Vec<String>,
    dropped: u64,
    /// CTAs handed to `Gpu::launch` across all kernels.
    pub(crate) ctas_launched: u64,
    /// Orphaned CTAs dropped with a dead GPU because no survivor existed.
    pub(crate) ctas_dropped: u64,
}

impl Sanitizer {
    pub(crate) fn new(fatal: bool) -> Sanitizer {
        Sanitizer {
            fatal,
            checks: 0,
            violations: Vec::new(),
            dropped: 0,
            ctas_launched: 0,
            ctas_dropped: 0,
        }
    }

    /// Counts one phase-boundary checkpoint.
    #[inline]
    pub(crate) fn checkpoint(&mut self) {
        self.checks += 1;
    }

    /// Records one violation, dropping (but counting) past the cap.
    pub(crate) fn record(&mut self, msg: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(msg);
        } else {
            self.dropped += 1;
        }
    }

    /// Captures accumulated audit state for checkpointing, so a restored
    /// sanitizing run reports totals identical to an unbroken one.
    pub(crate) fn snapshot_state(&self) -> SanitizerState {
        SanitizerState {
            checks: self.checks,
            violations: self.violations.clone(),
            dropped: self.dropped,
            ctas_launched: self.ctas_launched,
            ctas_dropped: self.ctas_dropped,
        }
    }

    /// Overwrites accumulated audit state from a
    /// [`Sanitizer::snapshot_state`]. The fatal flag is the restoring
    /// run's own choice and is left untouched.
    pub(crate) fn restore_state(&mut self, s: &SanitizerState) {
        self.checks = s.checks;
        self.violations.clone_from(&s.violations);
        self.dropped = s.dropped;
        self.ctas_launched = s.ctas_launched;
        self.ctas_dropped = s.ctas_dropped;
    }

    /// Finishes the run: panics in fatal mode if anything was found,
    /// otherwise returns the report.
    pub(crate) fn into_report(self) -> SanitizerReport {
        let rep = SanitizerReport {
            checks: self.checks,
            violations: self.violations,
            dropped: self.dropped,
        };
        if self.fatal && !rep.is_clean() {
            panic!(
                "MEMNET_SANITIZE=fatal: {} invariant violation(s) (+{} beyond cap):\n{}",
                rep.violations.len(),
                rep.dropped,
                rep.violations.join("\n")
            );
        }
        rep
    }
}

/// Serializable accumulated audit state (see [`Sanitizer::snapshot_state`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct SanitizerState {
    /// Phase-boundary checkpoints executed.
    pub(crate) checks: u64,
    /// Recorded violation messages.
    pub(crate) violations: Vec<String>,
    /// Violations beyond the message cap.
    pub(crate) dropped: u64,
    /// CTAs handed to `Gpu::launch` across all kernels.
    pub(crate) ctas_launched: u64,
    /// Orphaned CTAs dropped with a dead GPU.
    pub(crate) ctas_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_caps_messages_but_keeps_counting() {
        let mut s = Sanitizer::new(false);
        for i in 0..(MAX_VIOLATIONS + 5) {
            s.record(format!("v{i}"));
        }
        let rep = s.into_report();
        assert_eq!(rep.violations.len(), MAX_VIOLATIONS);
        assert_eq!(rep.dropped, 5);
        assert!(!rep.is_clean());
    }

    #[test]
    fn clean_report_round_trip() {
        let mut s = Sanitizer::new(true);
        s.checkpoint();
        s.checkpoint();
        let rep = s.into_report(); // fatal + clean must not panic
        assert!(rep.is_clean());
        assert_eq!(rep.checks, 2);
    }

    #[test]
    #[should_panic(expected = "invariant violation")]
    fn fatal_mode_panics_on_violations() {
        let mut s = Sanitizer::new(true);
        s.record("credits vanished".into());
        let _ = s.into_report();
    }

    #[test]
    fn mode_enabled_matrix() {
        assert!(!SanitizeMode::Off.enabled());
        assert!(SanitizeMode::Record.enabled());
        assert!(SanitizeMode::Fatal.enabled());
    }
}
