//! Profiling report: where a run's wall-clock time, allocations and
//! network capacity went.
//!
//! A [`ProfileReport`] is assembled by [`crate::SimBuilder::try_run_profiled`]
//! from three strictly read-only sources — the driver-loop [`Profiler`]
//! (wall-clock per clock domain, phase marks), the counting allocator
//! ([`memnet_obs::prof::alloc_stats`]), and end-of-run snapshots of
//! simulation statistics (flit-hops, CTAs, channel busy cycles). It is a
//! *separate* document from [`crate::SimReport`]: the determinism oracles
//! compare `SimReport` JSON byte-for-byte, and nothing wall-clock-derived
//! may leak into that document.

use memnet_noc::LinkUtilization;
use memnet_obs::prof::{AllocStats, LaneAttr, PhaseMark, ProfCat, Profiler};
use memnet_obs::{HistSnapshot, JsonWriter};

/// Wall-clock attribution for one profiler category.
#[derive(Debug, Clone)]
pub struct DomainProfile {
    /// Category name (`"core-tick"`, `"net-tick"`, `"fast-forward"`, ...).
    pub name: &'static str,
    /// Accumulated wall nanoseconds.
    pub wall_ns: u64,
    /// Closed timer scopes (ticks of that domain, or bookkeeping passes).
    pub ticks: u64,
}

/// A named histogram digest in the profile.
#[derive(Debug, Clone)]
pub struct ProfileHist {
    /// Series name (`"net.pkt_latency_cycles"`, ...).
    pub name: &'static str,
    /// Count + log-bucket percentiles.
    pub snap: HistSnapshot,
}

/// Per-router / per-link utilization matrices for the heatmap export.
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    /// Mean busy fraction per dense router index.
    pub routers: Vec<f64>,
    /// Both directions of every builder link, builder order.
    pub links: Vec<LinkUtilization>,
}

impl Heatmap {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("routers");
        w.begin_array();
        for &u in &self.routers {
            w.value(&u);
        }
        w.end_array();
        w.key("links");
        w.begin_array();
        for l in &self.links {
            w.begin_object();
            w.field("tag", l.tag.name());
            w.field("a", &(l.routers.0 as u64));
            w.field("b", &(l.routers.1 as u64));
            w.field("up", &l.up);
            w.field("fwd_busy_frac", &l.fwd_busy_frac);
            w.field("rev_busy_frac", &l.rev_busy_frac);
            w.field("fwd_bytes", &l.fwd_bytes);
            w.field("rev_bytes", &l.rev_bytes);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// The heatmap alone as a pretty JSON document (what
    /// `memnet profile --heatmap FILE` writes and
    /// `examples/traffic_heatmap.rs` reads).
    pub fn to_json_string(&self) -> String {
        let mut w = JsonWriter::pretty();
        self.write_json(&mut w);
        let mut s = w.finish();
        s.push('\n');
        s
    }
}

/// Where the run's wall-clock time, allocations and network capacity
/// went. Everything here is derived from host-side observation; no field
/// feeds back into simulation state.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Engine mode name (`"cycle-stepped"` / `"event-driven"`).
    pub engine: &'static str,
    /// Wall nanoseconds from profiler creation to report assembly.
    pub wall_ns: u64,
    /// Per-category wall-clock attribution, [`ProfCat::all`] order.
    pub domains: Vec<DomainProfile>,
    /// Per-phase wall/allocation deltas, phase order.
    pub phases: Vec<PhaseMark>,
    /// Counting-allocator totals (zeros with `installed: false` when the
    /// `count-alloc` feature is off).
    pub alloc: AllocStats,
    /// Latency / queue-depth / occupancy distributions.
    pub hists: Vec<ProfileHist>,
    /// Network cycles elapsed over the run.
    pub net_cycles: u64,
    /// Flits committed onto channels (cost denominator).
    pub flit_hops: u64,
    /// CTAs retired across all GPUs (cost denominator).
    pub ctas_done: u64,
    /// Trace-ring drops observed (0 without tracing).
    pub trace_dropped: u64,
    /// Horizon/commit publishes exchanged by the parallel engine's
    /// conservative synchronization (0 for the sequential engines).
    pub pdes_null_messages: u64,
    /// Wall nanoseconds lanes spent waiting at the synchronization
    /// barrier, summed over all lanes (0 for the sequential engines).
    pub pdes_blocked_ns: u64,
    /// Per-lane wall-clock attribution (`driver` first, then one entry
    /// per worker; empty for the sequential engines).
    pub lanes: Vec<LaneAttr>,
    /// Per-router / per-link utilization.
    pub heatmap: Heatmap,
}

impl ProfileReport {
    /// Collects the profiler + allocator side of the report. The caller
    /// fills in the simulation-statistic fields.
    pub(crate) fn from_profiler(p: &Profiler, engine: &'static str) -> ProfileReport {
        ProfileReport {
            engine,
            wall_ns: p.wall_ns(),
            domains: ProfCat::all()
                .iter()
                .map(|&c| DomainProfile {
                    name: c.name(),
                    wall_ns: p.total_ns(c),
                    ticks: p.ticks(c),
                })
                .collect(),
            phases: p.phases().to_vec(),
            alloc: memnet_obs::prof::alloc_stats(),
            hists: Vec::new(),
            net_cycles: 0,
            flit_hops: 0,
            ctas_done: 0,
            trace_dropped: 0,
            pdes_null_messages: p.pdes_null_messages(),
            pdes_blocked_ns: p.pdes_blocked_ns(),
            lanes: p.lanes().to_vec(),
            heatmap: Heatmap::default(),
        }
    }

    /// Mean wall nanoseconds per flit-hop (None when no flits moved).
    pub fn wall_ns_per_flit_hop(&self) -> Option<f64> {
        (self.flit_hops > 0).then(|| self.wall_ns as f64 / self.flit_hops as f64)
    }

    /// Mean wall nanoseconds per retired CTA (None when none retired).
    pub fn wall_ns_per_cta(&self) -> Option<f64> {
        (self.ctas_done > 0).then(|| self.wall_ns as f64 / self.ctas_done as f64)
    }

    /// The whole profile as one pretty JSON document.
    pub fn to_json_string(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field("engine", self.engine);
        w.field("wall_ns", &self.wall_ns);
        w.key("domains");
        w.begin_array();
        for d in &self.domains {
            w.begin_object();
            w.field("name", d.name);
            w.field("wall_ns", &d.wall_ns);
            w.field("ticks", &d.ticks);
            w.end_object();
        }
        w.end_array();
        w.key("phases");
        w.begin_array();
        for m in &self.phases {
            w.begin_object();
            w.field("name", m.name);
            w.field("wall_ns", &m.wall_ns);
            w.field("allocs", &m.allocs);
            w.field("alloc_bytes", &m.alloc_bytes);
            w.end_object();
        }
        w.end_array();
        w.key("alloc");
        w.begin_object();
        w.field("installed", &self.alloc.installed);
        w.field("allocs", &self.alloc.allocs);
        w.field("bytes", &self.alloc.bytes);
        w.field("live_bytes", &self.alloc.live_bytes);
        w.field("peak_bytes", &self.alloc.peak_bytes);
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for h in &self.hists {
            w.key(h.name);
            w.begin_object();
            w.field("count", &h.snap.count);
            w.field("p50", &h.snap.p50);
            w.field("p90", &h.snap.p90);
            w.field("p99", &h.snap.p99);
            w.field("max", &h.snap.max);
            w.end_object();
        }
        w.end_object();
        w.key("cost");
        w.begin_object();
        w.field("net_cycles", &self.net_cycles);
        w.field("flit_hops", &self.flit_hops);
        w.field("ctas_done", &self.ctas_done);
        match self.wall_ns_per_flit_hop() {
            Some(v) => w.field("wall_ns_per_flit_hop", &v),
            None => w.field("wall_ns_per_flit_hop", &f64::NAN), // writes null
        }
        match self.wall_ns_per_cta() {
            Some(v) => w.field("wall_ns_per_cta", &v),
            None => w.field("wall_ns_per_cta", &f64::NAN),
        }
        w.end_object();
        w.field("trace_dropped", &self.trace_dropped);
        w.key("pdes");
        w.begin_object();
        w.field("null_messages", &self.pdes_null_messages);
        w.field("blocked_ns", &self.pdes_blocked_ns);
        w.key("lanes");
        w.begin_array();
        for l in &self.lanes {
            w.begin_object();
            w.field("name", l.name.as_str());
            w.field("wall_ns", &l.wall_ns);
            w.field("blocked_ns", &l.blocked_ns);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.key("heatmap");
        self.heatmap.write_json(&mut w);
        w.end_object();
        let mut s = w.finish();
        s.push('\n');
        s
    }
}
