//! Scalable Kernel Execution (SKE): the virtual-GPU runtime (Section III).
//!
//! SKE presents N discrete GPUs as one virtual GPU: an unmodified
//! single-GPU kernel is launched into the virtual command queue, and the
//! runtime generates one launch command per physical GPU carrying its CTA
//! range (Fig. 5). Three CTA assignment policies are modeled
//! (Section III-B):
//!
//! * [`CtaPolicy::StaticChunk`] — the paper's choice: the flattened CTA
//!   index space is split into N contiguous chunks, preserving the
//!   inter-CTA locality that raises L1/L2 hit rates.
//! * [`CtaPolicy::RoundRobin`] — fine-grained interleaving (the 8 %-slower
//!   baseline).
//! * [`CtaPolicy::Stealing`] — static assignment plus dynamic stealing of
//!   undispatched CTAs by idle GPUs (<1 % gain in the paper).

/// CTA-to-GPU assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CtaPolicy {
    /// Contiguous 1/N chunks (paper default).
    #[default]
    StaticChunk,
    /// CTA `i` goes to GPU `i mod N`.
    RoundRobin,
    /// Static chunks + runtime stealing from the deepest queue.
    Stealing,
}

impl CtaPolicy {
    /// True if the engine should run the stealing loop.
    pub fn steals(self) -> bool {
        matches!(self, CtaPolicy::Stealing)
    }
}

/// Splits the flattened grid `0..grid` over `n_gpus` queues.
///
/// Multi-dimensional CUDA grids are flattened before partitioning
/// (Section III-B), so a `u32` index space fully describes the grid.
///
/// # Panics
///
/// Panics if `n_gpus` is zero.
pub fn partition(grid: u32, n_gpus: u32, policy: CtaPolicy) -> Vec<Vec<u32>> {
    assert!(n_gpus > 0, "need at least one GPU");
    let mut queues = vec![Vec::new(); n_gpus as usize];
    match policy {
        CtaPolicy::StaticChunk | CtaPolicy::Stealing => {
            // First ceil(grid/n) CTAs to GPU0, the next chunk to GPU1, ...
            let base = grid / n_gpus;
            let extra = grid % n_gpus;
            let mut next = 0u32;
            for (g, q) in queues.iter_mut().enumerate() {
                let len = base + u32::from((g as u32) < extra);
                q.extend(next..next + len);
                next += len;
            }
        }
        CtaPolicy::RoundRobin => {
            for cta in 0..grid {
                queues[(cta % n_gpus) as usize].push(cta);
            }
        }
    }
    queues
}

/// Picks a steal: `(victim, count)` — half the deepest queue — for an idle
/// GPU, or `None` if no queue has more than one undispatched CTA.
pub fn pick_steal(pending: &[usize]) -> Option<(usize, usize)> {
    let (victim, &depth) = pending.iter().enumerate().max_by_key(|&(_, &d)| d)?;
    if depth < 2 {
        return None;
    }
    Some((victim, depth / 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coverage_ok(grid: u32, queues: &[Vec<u32>]) {
        let mut seen = vec![false; grid as usize];
        for q in queues {
            for &c in q {
                assert!(!seen[c as usize], "cta {c} assigned twice");
                seen[c as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every CTA must be assigned");
    }

    #[test]
    fn static_chunks_are_contiguous_and_cover() {
        let q = partition(100, 4, CtaPolicy::StaticChunk);
        coverage_ok(100, &q);
        assert_eq!(q[0], (0..25).collect::<Vec<_>>());
        assert_eq!(q[3], (75..100).collect::<Vec<_>>());
    }

    #[test]
    fn static_handles_remainders() {
        let q = partition(10, 4, CtaPolicy::StaticChunk);
        coverage_ok(10, &q);
        let lens: Vec<usize> = q.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        // Chunks remain contiguous.
        assert_eq!(q[0], vec![0, 1, 2]);
        assert_eq!(q[1], vec![3, 4, 5]);
    }

    #[test]
    fn round_robin_interleaves() {
        let q = partition(8, 4, CtaPolicy::RoundRobin);
        coverage_ok(8, &q);
        assert_eq!(q[0], vec![0, 4]);
        assert_eq!(q[1], vec![1, 5]);
    }

    #[test]
    fn fewer_ctas_than_gpus() {
        let q = partition(2, 4, CtaPolicy::StaticChunk);
        coverage_ok(2, &q);
        assert_eq!(q.iter().filter(|q| q.is_empty()).count(), 2);
    }

    #[test]
    fn zero_grid_is_empty() {
        let q = partition(0, 4, CtaPolicy::RoundRobin);
        assert!(q.iter().all(Vec::is_empty));
    }

    #[test]
    fn single_gpu_gets_everything() {
        let q = partition(64, 1, CtaPolicy::StaticChunk);
        assert_eq!(q[0].len(), 64);
    }

    #[test]
    fn stealing_uses_static_initial_assignment() {
        assert_eq!(
            partition(64, 4, CtaPolicy::Stealing),
            partition(64, 4, CtaPolicy::StaticChunk)
        );
        assert!(CtaPolicy::Stealing.steals());
        assert!(!CtaPolicy::StaticChunk.steals());
    }

    #[test]
    fn pick_steal_halves_the_deepest_queue() {
        assert_eq!(pick_steal(&[0, 10, 4, 0]), Some((1, 5)));
        assert_eq!(pick_steal(&[0, 1, 0]), None, "too shallow to steal");
        assert_eq!(pick_steal(&[]), None);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let _ = partition(10, 0, CtaPolicy::StaticChunk);
    }

    /// Deterministic randomized property: any (grid, n, policy) drawn from
    /// a seeded generator covers each CTA exactly once.
    #[test]
    fn every_policy_covers_each_cta_exactly_once() {
        use memnet_common::rng::SplitMix64;
        let policies = [
            CtaPolicy::StaticChunk,
            CtaPolicy::RoundRobin,
            CtaPolicy::Stealing,
        ];
        let mut rng = SplitMix64::new(0x5ce_cafe);
        for _ in 0..32 {
            let grid = rng.next_below(5000) as u32;
            let n = 1 + rng.next_below(16) as u32;
            let policy = policies[rng.next_below(3) as usize];
            let q = partition(grid, n, policy);
            assert_eq!(q.len(), n as usize, "grid {grid} n {n} {policy:?}");
            let mut all: Vec<u32> = q.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (0..grid).collect::<Vec<_>>(),
                "grid {grid} n {n} {policy:?}"
            );
        }
    }
}
