//! Full-system simulation: organizations, phases, and the multi-clock
//! engine.
//!
//! A [`SimBuilder`] assembles one of the Table III organizations —
//! PCIe / PCIe-ZC / CMN / CMN-ZC / GMN / GMN-ZC / UMN — around a workload,
//! runs its phases (host pre-compute, H2D memcpy, SKE kernel, D2H memcpy,
//! host post-compute), and produces a [`SimReport`] with the runtime
//! breakdown of Fig. 14 plus network energy, cache statistics, and the
//! GPU×HMC traffic matrix of Fig. 10.
//!
//! Clusters are indexed `0..n_gpus` for GPUs and `n_gpus` for the CPU; HMC
//! global ids are cluster-major (`cluster * hmcs_per_cluster + local`).

use crate::faults::{resolve_plan, FaultAction, FaultOwners, ResolvedFault};
use crate::memory::{MemoryLayout, PlacementPolicy, HOST_BASE};
use crate::profile::{Heatmap, ProfileHist, ProfileReport};
use crate::sanitize::{SanitizeMode, Sanitizer, SanitizerReport};
use crate::ske::{self, CtaPolicy};
use crate::snapshot::SystemSnapshot;
use memnet_common::stats::TrafficMatrix;
use memnet_common::time::{fs_to_ns, Fs};
use memnet_common::{
    Agent, Clock, CpuId, FaultPlan, GpuId, MemReq, MemResp, NodeId, Payload, SystemConfig,
};
use memnet_cpu::{CpuCore, CpuStream, DmaEngine};
use memnet_engine::Calendar;
use memnet_gpu::Gpu;
use memnet_hmc::mapping::Location;
use memnet_hmc::HmcDevice;
use memnet_noc::topo::{add_cpu_overlay, add_pcie_tree, build_clusters, SlicedKind, TopologyKind};
use memnet_noc::{LinkSpec, LinkTag, MsgClass, Network, NetworkBuilder, NocParams, RoutingPolicy};
use memnet_obs::metrics::Histogram;
use memnet_obs::prof::{ProfCat, Profiler};
use memnet_obs::{
    ClockDomain, HistSnapshot, JsonWriter, MetricSink, MetricsRegistry, ToJson, TraceEventKind,
    Tracer,
};
use memnet_workloads::{HostWork, WorkloadSpec};
use std::collections::VecDeque;

/// The parallel engine's worker crew ([`EngineMode::Parallel`]): shards
/// GPU core/L2 and HMC DRAM edges across threads, bit-identical to the
/// sequential engines. A child module so it can drive `System`'s private
/// state without widening any visibility.
#[path = "par.rs"]
mod par;

/// The multi-GPU system organizations of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Organization {
    /// Conventional PCIe interconnect, explicit memcpy.
    Pcie,
    /// PCIe with zero-copy (data stays in CPU memory).
    PcieZc,
    /// CPU memory network, explicit memcpy.
    Cmn,
    /// CPU memory network with zero-copy.
    CmnZc,
    /// GPU memory network, explicit memcpy (CPU still behind PCIe).
    Gmn,
    /// GPU memory network with zero-copy.
    GmnZc,
    /// Unified memory network: CPU and GPU HMCs share one network; no
    /// copies at all.
    Umn,
    /// NVLink-style processor-centric network (Fig. 1(b)): GPUs and the
    /// CPU are fully interconnected with high-speed point-to-point links,
    /// but memories stay behind their owner — remote accesses still route
    /// through the remote GPU. Not part of Table III; included as the
    /// modern PCN baseline the paper contrasts against (Section II-B).
    Pcn,
}

impl Organization {
    /// All seven configurations in Fig. 14 order.
    pub fn all() -> [Organization; 7] {
        use Organization::*;
        [Pcie, PcieZc, Cmn, CmnZc, Gmn, GmnZc, Umn]
    }

    /// Display name matching Table III.
    pub fn name(self) -> &'static str {
        match self {
            Organization::Pcie => "PCIe",
            Organization::PcieZc => "PCIe-ZC",
            Organization::Cmn => "CMN",
            Organization::CmnZc => "CMN-ZC",
            Organization::Gmn => "GMN",
            Organization::GmnZc => "GMN-ZC",
            Organization::Umn => "UMN",
            Organization::Pcn => "PCN",
        }
    }

    /// Table III plus the NVLink-style PCN baseline.
    pub fn all_extended() -> [Organization; 8] {
        use Organization::*;
        [Pcie, PcieZc, Cmn, CmnZc, Gmn, GmnZc, Umn, Pcn]
    }

    /// True if data is staged with explicit memcpy.
    pub fn uses_memcpy(self) -> bool {
        matches!(
            self,
            Organization::Pcie | Organization::Cmn | Organization::Gmn | Organization::Pcn
        )
    }

    /// True if kernels access data resident in CPU memory (zero-copy).
    pub fn zero_copy(self) -> bool {
        matches!(
            self,
            Organization::PcieZc | Organization::CmnZc | Organization::GmnZc
        )
    }
}

/// How the engine advances simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Tick every clock domain at every one of its edges, idle or not —
    /// the original engine behavior. Wall-clock cost scales with
    /// simulated time.
    CycleStepped,
    /// Park clock domains whose components report idle and fast-forward
    /// their clocks when work arrives, so quiescent stretches cost
    /// O(events) instead of O(cycles). Produces bit-identical
    /// [`SimReport`]s (and trace/metric streams) to `CycleStepped`.
    #[default]
    EventDriven,
    /// Shard the kernel phase across worker threads: each worker owns a
    /// contiguous range of GPUs and executes their core/L2 clock edges
    /// ahead of a driver thread (network, HMCs, CPU, bookkeeping) under
    /// a conservative PDES horizon derived from the NoC SerDes +
    /// router-pipeline lookahead. Cross-thread deliveries are merged by
    /// (timestamp, domain slot, shard index), never arrival order, so
    /// reports, traces, metrics and sanitizer results stay bit-identical
    /// to both sequential engines at any thread count
    /// ([`SimBuilder::sim_threads`]).
    Parallel,
}

impl EngineMode {
    /// Display name (`"cycle-stepped"` / `"event-driven"` /
    /// `"parallel"`).
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::CycleStepped => "cycle-stepped",
            EngineMode::EventDriven => "event-driven",
            EngineMode::Parallel => "parallel",
        }
    }

    /// The default mode, overridable through the `MEMNET_ENGINE`
    /// environment variable (`cycle-stepped`/`cycle`,
    /// `event-driven`/`event`, or `parallel`/`pdes`) so CI can run whole
    /// test suites under any engine. An explicit [`SimBuilder::engine`]
    /// call wins.
    pub fn from_env() -> EngineMode {
        match std::env::var("MEMNET_ENGINE").ok().as_deref() {
            Some("cycle-stepped" | "cycle") => EngineMode::CycleStepped,
            Some("event-driven" | "event") => EngineMode::EventDriven,
            Some("parallel" | "pdes") => EngineMode::Parallel,
            _ => EngineMode::default(),
        }
    }
}

/// Why a simulation could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The [`SystemConfig`] failed validation.
    InvalidConfig(String),
    /// [`SimBuilder::workload`] was never called.
    MissingWorkload,
    /// A checkpoint could not be taken (timed-out warmup) or restored
    /// (configuration fingerprint mismatch, malformed snapshot).
    Snapshot(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig(why) => write!(f, "invalid system configuration: {why}"),
            SimError::MissingWorkload => write!(f, "SimBuilder requires a workload"),
            SimError::Snapshot(why) => write!(f, "snapshot error: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-GPU digest for detailed reporting.
#[derive(Debug, Clone, Copy)]
pub struct GpuSummary {
    /// L1 read hit rate.
    pub l1_hit_rate: f64,
    /// L2 read hit rate.
    pub l2_hit_rate: f64,
    /// CTAs retired by this GPU.
    pub ctas_done: u64,
    /// Off-chip memory requests issued.
    pub mem_reqs: u64,
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Organization simulated.
    pub org: Organization,
    /// Workload abbreviation.
    pub workload: String,
    /// Host→device plus device→host copy time, ns (0 for ZC/UMN).
    pub memcpy_ns: f64,
    /// SKE kernel execution time, ns.
    pub kernel_ns: f64,
    /// Host compute time, ns.
    pub host_ns: f64,
    /// Network energy over the whole run, mJ.
    pub energy_mj: f64,
    /// Merged GPU L1 read hit rate.
    pub l1_hit_rate: f64,
    /// Merged GPU L2 read hit rate.
    pub l2_hit_rate: f64,
    /// Mean network packet latency, ns.
    pub avg_pkt_latency_ns: f64,
    /// Mean router-to-router hop count.
    pub avg_hops: f64,
    /// DRAM row-hit rate across all vaults.
    pub row_hit_rate: f64,
    /// Bytes injected per (GPU row; last row = CPU+DMA) × (HMC column).
    pub traffic: TrafficMatrix,
    /// Overlay pass-through forwards taken.
    pub passthrough: u64,
    /// Non-minimal (Valiant) packets under UGAL.
    pub nonminimal: u64,
    /// True if any phase hit its simulation-time budget.
    pub timed_out: bool,
    /// Fault-plan events applied to the live system.
    pub faults_injected: u64,
    /// Fault-plan events dropped because their link class has no
    /// population in this organization.
    pub faults_skipped: u64,
    /// Packets re-pointed onto surviving minimal paths after a link cut.
    pub reroutes: u64,
    /// Extra serialization passes paid on BER-degraded links.
    pub retries: u64,
    /// Packets dead-lettered because no route survived.
    pub dead_letters: u64,
    /// Requests that could not complete over the network and finished
    /// through the fail-fast recovery path (dead-lettered, unroutable at
    /// injection, or addressed to a lost GPU).
    pub failed_requests: u64,
    /// CTAs reassigned from lost GPUs onto survivors.
    pub rebalanced_ctas: u64,
    /// GPUs lost to injected faults.
    pub lost_gpus: u64,
    /// Per-GPU digests (load balance, cache behavior).
    pub per_gpu: Vec<GpuSummary>,
    /// Mean busy fraction of the external network channels.
    pub channel_utilization: f64,
    /// Chrome trace-event JSON, when tracing was enabled with
    /// [`SimBuilder::trace`]. Load it in `chrome://tracing` or Perfetto.
    pub trace_json: Option<String>,
    /// Metrics-registry JSON (counters, gauges, epochs), when periodic
    /// snapshots were enabled with [`SimBuilder::metrics_every`].
    pub metrics_json: Option<String>,
    /// Invariant-audit results, when the runtime sanitizer was enabled
    /// with [`SimBuilder::sanitize`] or `MEMNET_SANITIZE`.
    pub sanitizer: Option<SanitizerReport>,
    /// Trace-ring events evicted on overflow (0 without tracing).
    /// Deliberately *not* serialized by [`SimReport::to_json_string`]:
    /// the determinism oracles compare that JSON byte-for-byte and drop
    /// counts depend only on ring capacity, but keeping it out means a
    /// capacity change can never perturb the compared document. The CLI
    /// reads it to warn about lossy traces at export time.
    pub trace_dropped: u64,
}

impl SimReport {
    /// Total runtime (memcpy + kernel + host), ns.
    pub fn total_ns(&self) -> f64 {
        self.memcpy_ns + self.kernel_ns + self.host_ns
    }

    /// Serializes the report as one pretty-printed JSON document.
    ///
    /// Uses `memnet_obs::JsonWriter`, which keeps this struct free of
    /// serde bounds while still escaping strings and mapping non-finite
    /// floats to null. Metrics epochs (when recorded) nest under
    /// `"metrics"` and sanitizer findings under `"sanitizer"`, so stdout
    /// consumers always get a single top-level object.
    pub fn to_json_string(&self) -> String {
        self.render_json(JsonWriter::pretty())
    }

    /// Serializes the same document as [`SimReport::to_json_string`], but
    /// compactly on a single line — required by newline-delimited
    /// protocols (the `memnet serve` daemon frames one JSON document per
    /// line).
    pub fn to_json_compact(&self) -> String {
        self.render_json(JsonWriter::new())
    }

    fn render_json(&self, mut w: JsonWriter) -> String {
        w.begin_object();
        w.field("workload", self.workload.as_str());
        w.field("org", self.org.name());
        w.field("kernel_ns", &self.kernel_ns);
        w.field("memcpy_ns", &self.memcpy_ns);
        w.field("host_ns", &self.host_ns);
        w.field("total_ns", &self.total_ns());
        w.field("energy_mj", &self.energy_mj);
        w.field("l1_hit_rate", &self.l1_hit_rate);
        w.field("l2_hit_rate", &self.l2_hit_rate);
        w.field("avg_pkt_latency_ns", &self.avg_pkt_latency_ns);
        w.field("avg_hops", &self.avg_hops);
        w.field("row_hit_rate", &self.row_hit_rate);
        w.field("timed_out", &self.timed_out);
        w.field("faults_injected", &self.faults_injected);
        w.field("faults_skipped", &self.faults_skipped);
        w.field("reroutes", &self.reroutes);
        w.field("retries", &self.retries);
        w.field("dead_letters", &self.dead_letters);
        w.field("failed_requests", &self.failed_requests);
        w.field("rebalanced_ctas", &self.rebalanced_ctas);
        w.field("lost_gpus", &self.lost_gpus);
        if let Some(s) = &self.sanitizer {
            w.key("sanitizer");
            w.begin_object();
            w.field("checks", &s.checks);
            w.field("clean", &s.is_clean());
            w.key("violations");
            w.begin_array();
            for v in &s.violations {
                w.value(v.as_str());
            }
            w.end_array();
            w.field("violations_dropped", &s.dropped);
            w.end_object();
        }
        if let Some(m) = &self.metrics_json {
            if let Ok(v) = memnet_obs::parse(m) {
                w.key("metrics");
                w.value(&v);
            }
        }
        w.end_object();
        w.finish()
    }
}

/// Builds and runs one full-system simulation.
#[derive(Debug, Clone)]
pub struct SimBuilder {
    cfg: SystemConfig,
    org: Organization,
    topology: TopologyKind,
    routing: RoutingPolicy,
    overlay: bool,
    cta_policy: CtaPolicy,
    workload: Option<WorkloadSpec>,
    data_clusters: Option<Vec<u32>>,
    active_gpus: Option<u32>,
    phase_budget_ns: f64,
    placement: PlacementPolicy,
    co_workloads: Vec<WorkloadSpec>,
    trace_capacity: Option<usize>,
    metrics_every: Option<u64>,
    engine_mode: EngineMode,
    sim_threads: Option<u32>,
    trace_engine: bool,
    faults: FaultPlan,
    sanitize: SanitizeMode,
    profile: bool,
}

impl SimBuilder {
    /// Starts a builder for `org` with the scaled default configuration.
    pub fn new(org: Organization) -> Self {
        SimBuilder {
            cfg: SystemConfig::scaled(),
            org,
            topology: TopologyKind::Sliced {
                kind: SlicedKind::Fbfly,
                double: false,
            },
            routing: RoutingPolicy::Minimal,
            overlay: false,
            cta_policy: CtaPolicy::StaticChunk,
            workload: None,
            data_clusters: None,
            active_gpus: None,
            phase_budget_ns: 3_000_000.0,
            placement: PlacementPolicy::Random,
            co_workloads: Vec::new(),
            trace_capacity: None,
            metrics_every: None,
            engine_mode: EngineMode::from_env(),
            sim_threads: None,
            trace_engine: false,
            faults: FaultPlan::new(),
            sanitize: SanitizeMode::from_env(),
            profile: false,
        }
    }

    /// Enables the self-profiler: wall-clock attribution per clock
    /// domain, per-phase allocation deltas, latency/occupancy histograms
    /// and utilization heatmaps, returned as the [`ProfileReport`] half
    /// of [`SimBuilder::try_run_profiled`]. The profiler observes the
    /// driver loop from outside simulation state, so the [`SimReport`]
    /// stays byte-identical with profiling on or off.
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Enables the runtime invariant sanitizer (default: resolved from
    /// `MEMNET_SANITIZE` — see [`SanitizeMode::from_env`]). Conservation
    /// laws are audited at domain edges while the simulation runs and the
    /// findings land in [`SimReport::sanitizer`]; [`SanitizeMode::Fatal`]
    /// panics at the end of a run that violated any invariant.
    pub fn sanitize(mut self, mode: SanitizeMode) -> Self {
        self.sanitize = mode;
        self
    }

    /// Installs a deterministic fault plan. Events resolve against the
    /// built system and apply on owning-domain clock edges, so the same
    /// plan yields bit-identical reports under both [`EngineMode`]s.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Selects how the engine advances time (default:
    /// [`EngineMode::EventDriven`]). Both modes produce bit-identical
    /// reports; `CycleStepped` exists as the reference for equivalence
    /// tests and wall-clock baselines.
    pub fn engine(mut self, mode: EngineMode) -> Self {
        self.engine_mode = mode;
        self
    }

    /// Worker-thread count for [`EngineMode::Parallel`] (default:
    /// `MEMNET_SIM_THREADS`, else the machine's available parallelism
    /// capped at 4). Clamped to `[1, n_gpus]` at build time. Thread
    /// count is a pure wall-clock knob — results are bit-identical at
    /// any value — so it is excluded from the configuration fingerprint,
    /// and the other engine modes ignore it.
    pub fn sim_threads(mut self, n: u32) -> Self {
        self.sim_threads = Some(n.max(1));
        self
    }

    /// Also records engine scheduling events (domain wakes with their
    /// skipped-edge counts) into the trace. Off by default so traces stay
    /// identical across [`EngineMode`]s; requires [`SimBuilder::trace`].
    pub fn trace_engine(mut self, on: bool) -> Self {
        self.trace_engine = on;
        self
    }

    /// Enables event tracing into a ring buffer of `capacity` events; the
    /// report then carries the Chrome trace JSON in
    /// [`SimReport::trace_json`]. Oldest events are dropped on overflow.
    ///
    /// # Panics
    ///
    /// Panics (at `run`) if `capacity` is zero.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Snapshots every counter and gauge into a metrics epoch once per
    /// `cycles` network cycles; the report then carries the registry JSON
    /// in [`SimReport::metrics_json`]. A zero period disables snapshots.
    pub fn metrics_every(mut self, cycles: u64) -> Self {
        self.metrics_every = Some(cycles);
        self
    }

    /// Adds a workload to run *concurrently* with the primary one
    /// (concurrent kernel execution — the SKE extension of Section III).
    /// Each co-workload gets a disjoint region of the shared address space
    /// and its CTAs interleave with the primary kernel's on every GPU.
    ///
    /// # Panics
    ///
    /// Panics (at `run`) if a co-workload has host compute phases; only the
    /// primary workload's host phases execute.
    pub fn co_workload(mut self, w: WorkloadSpec) -> Self {
        self.co_workloads.push(w);
        self
    }

    /// Sets the page placement policy (ablation of the Section VI-A
    /// random-placement assumption).
    pub fn placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    /// Replaces the whole system configuration.
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the number of GPUs.
    pub fn gpus(mut self, n: u32) -> Self {
        self.cfg.n_gpus = n;
        self
    }

    /// Sets SMs per GPU.
    pub fn sms_per_gpu(mut self, n: u32) -> Self {
        self.cfg.gpu.n_sms = n;
        self
    }

    /// Sets the workload (required).
    pub fn workload(mut self, w: WorkloadSpec) -> Self {
        self.workload = Some(w);
        self
    }

    /// Sets the memory-network topology (GMN/UMN organizations).
    pub fn topology(mut self, t: TopologyKind) -> Self {
        self.topology = t;
        self
    }

    /// Sets the routing policy.
    pub fn routing(mut self, r: RoutingPolicy) -> Self {
        self.routing = r;
        self
    }

    /// Enables the CPU overlay network (UMN with FBFLY slices only).
    pub fn overlay(mut self, on: bool) -> Self {
        self.overlay = on;
        self
    }

    /// Sets the CTA assignment policy.
    pub fn cta_policy(mut self, p: CtaPolicy) -> Self {
        self.cta_policy = p;
        self
    }

    /// Restricts device-data placement to the given GPU clusters (Fig. 7).
    pub fn data_clusters(mut self, clusters: Vec<u32>) -> Self {
        self.data_clusters = Some(clusters);
        self
    }

    /// Runs the kernel on only the first `n` GPUs (Fig. 7 uses 1).
    pub fn active_gpus(mut self, n: u32) -> Self {
        self.active_gpus = Some(n);
        self
    }

    /// Sets the per-phase simulated-time budget in nanoseconds.
    pub fn phase_budget_ns(mut self, ns: f64) -> Self {
        self.phase_budget_ns = ns;
        self
    }

    /// Builds the system and runs every phase.
    ///
    /// # Panics
    ///
    /// Panics if no workload was set or the configuration is invalid.
    /// Use [`SimBuilder::try_run`] for a typed error instead.
    pub fn run(self) -> SimReport {
        match self.try_run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the system and runs every phase, returning a typed error
    /// instead of panicking when the builder is unusable.
    ///
    /// # Errors
    ///
    /// [`SimError::MissingWorkload`] when no workload was set,
    /// [`SimError::InvalidConfig`] when the configuration fails
    /// validation.
    pub fn try_run(self) -> Result<SimReport, SimError> {
        Ok(System::try_build(self)?.run())
    }

    /// Like [`SimBuilder::try_run`], but also returns the
    /// [`ProfileReport`] when [`SimBuilder::profile`] was enabled.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimBuilder::try_run`].
    pub fn try_run_profiled(self) -> Result<(SimReport, Option<ProfileReport>), SimError> {
        Ok(System::try_build(self)?.run_profiled())
    }

    /// Like [`SimBuilder::try_run`], but also captures a deterministic
    /// full-state checkpoint at the pre-kernel phase boundary (after
    /// host-pre compute and the host→device copies, before the first
    /// kernel cycle). The snapshot restores bit-identically under either
    /// [`EngineMode`] via [`SimBuilder::try_run_restored`], so sweeps
    /// sharing a warmup prefix can fork from one snapshot.
    ///
    /// `meta` is an opaque caller string carried verbatim inside the
    /// snapshot (the CLI stores the original run flags there).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimBuilder::try_run`], plus
    /// [`SimError::Snapshot`] when the warmup prefix hit the phase budget
    /// — a timed-out prefix is not a meaningful fork point.
    pub fn try_run_checkpointed(self, meta: &str) -> Result<(SimReport, SystemSnapshot), SimError> {
        let fp = self.fingerprint();
        System::try_build(self)?.run_checkpointed(meta, fp)
    }

    /// Skips the warmup prefix and runs the rest of the simulation from a
    /// snapshot taken by [`SimBuilder::try_run_checkpointed`] on an
    /// identically configured builder. The engine mode and the pure
    /// observers (trace, metrics, profile, sanitize) may differ from the
    /// checkpointing run; everything else must match.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SimBuilder::try_run`], plus
    /// [`SimError::Snapshot`] when the snapshot's configuration
    /// fingerprint does not match this builder.
    pub fn try_run_restored(self, snap: &SystemSnapshot) -> Result<SimReport, SimError> {
        let fp = self.fingerprint();
        if snap.fingerprint() != fp {
            return Err(SimError::Snapshot(format!(
                "snapshot fingerprint {:016x} does not match this configuration ({fp:016x}); \
                 a snapshot restores only onto the exact configuration that took it \
                 (engine mode and observability settings excepted)",
                snap.fingerprint(),
            )));
        }
        let mut sys = System::try_build(self)?;
        sys.apply_snapshot(snap);
        Ok(sys.run_from_snapshot_point(snap.host_fs, snap.memcpy_fs).0)
    }

    /// Content-address of everything that determines simulated outcomes:
    /// an FNV-1a hash (SplitMix64-finalized) of
    /// [`SimBuilder::canonical_string`]. The engine mode and the pure
    /// observers (trace, metrics, profile, sanitize) are excluded —
    /// reports are bit-identical across engine modes, so snapshots and
    /// cached results are shareable across them.
    pub fn fingerprint(&self) -> u64 {
        crate::snapshot::fnv1a64(self.canonical_string().as_bytes())
    }

    /// The canonical configuration string behind
    /// [`SimBuilder::fingerprint`]: every outcome-determining knob in a
    /// fixed order, with floats rendered as IEEE-754 bit patterns so two
    /// builders collide exactly when they simulate the same system.
    pub fn canonical_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "org={};", self.org.name());
        let _ = write!(s, "cfg={};", self.cfg.to_json());
        let _ = write!(
            s,
            "topology={:?};routing={:?};overlay={};",
            self.topology, self.routing, self.overlay
        );
        let _ = write!(
            s,
            "cta_policy={:?};placement={:?};",
            self.cta_policy, self.placement
        );
        let _ = write!(s, "workload={:?};", self.workload);
        let _ = write!(s, "co={:?};", self.co_workloads);
        let _ = write!(
            s,
            "data_clusters={:?};active_gpus={:?};",
            self.data_clusters, self.active_gpus
        );
        let _ = write!(s, "phase_budget_bits={};", self.phase_budget_ns.to_bits());
        let _ = write!(s, "faults={};", crate::faults::plan_to_json(&self.faults));
        s
    }
}

/// Clock-domain indices in intra-timestep tick (priority) order. A domain
/// earlier in this order ticks first within one timestep, which decides
/// whether work it produces is visible to a later domain at the *same*
/// timestep (it is) or only at the consumer's next edge (work flowing
/// "backwards" to an earlier domain).
mod domain {
    pub const CORE: usize = 0;
    pub const L2: usize = 1;
    pub const CPU: usize = 2;
    pub const NET: usize = 3;
    pub const DRAM: usize = 4;
    pub const COUNT: usize = 5;

    pub fn name(d: usize) -> &'static str {
        ["core", "l2", "cpu", "net", "dram"][d]
    }
}

/// Profiling state owned by the engine driver, fully outside simulation
/// state. The [`Profiler`] is written only from the driver loop
/// ([`System::advance`], [`System::apply_skip`], [`System::emit_phase`]);
/// the histograms record values the simulation already computed
/// (latencies, queue depths) without feeding anything back, so enabling
/// profiling cannot change a single simulated outcome.
struct ProfPack {
    profiler: Profiler,
    /// Packet injection-to-ejection latency, network cycles.
    lat_hist: Histogram,
    /// Router input-VC occupancy, flits, sampled every
    /// [`ProfPack::sample_every`] network cycles.
    vc_hist: Histogram,
    /// Vault controller queue depth, requests, same cadence.
    vault_hist: Histogram,
    /// Network cycle at which the next occupancy sample is due.
    next_sample: u64,
    /// Network cycles between occupancy samples.
    sample_every: u64,
}

impl ProfPack {
    /// Default occupancy-sampling cadence, network cycles.
    const SAMPLE_EVERY: u64 = 1_000;

    fn new(sample_every: u64) -> Self {
        ProfPack {
            profiler: Profiler::new(),
            lat_hist: Histogram::default(),
            vc_hist: Histogram::default(),
            vault_hist: Histogram::default(),
            next_sample: sample_every,
            sample_every,
        }
    }
}

/// Per-HMC state the engine keeps outside the device model.
#[derive(Debug, Default)]
struct HmcPort {
    /// Request popped from the network but rejected by a full vault queue.
    deferred: Option<(memnet_common::MemReq, Location)>,
    /// Completed responses awaiting network injection.
    resp_q: VecDeque<MemResp>,
}

struct System {
    cfg: SystemConfig,
    org: Organization,
    workload: WorkloadSpec,
    co_workloads: Vec<(WorkloadSpec, u64)>,
    cta_policy: CtaPolicy,
    active_gpus: u32,
    use_overlay: bool,
    phase_budget: Fs,

    net: Network,
    gpus: Vec<Gpu>,
    gpu_eps: Vec<NodeId>,
    cpu: CpuCore,
    dma: DmaEngine,
    cpu_ep: NodeId,
    hmcs: Vec<HmcDevice>,
    hmc_eps: Vec<NodeId>,
    hmc_ports: Vec<HmcPort>,
    layout: MemoryLayout,

    /// Clock domains indexed by the [`domain`] constants.
    cal: Calendar,
    /// True when idle domains may be parked ([`EngineMode::EventDriven`]).
    park: bool,
    /// How this system advances time (drives kernel-phase dispatch and
    /// the profile report's engine label).
    engine_mode: EngineMode,
    /// Worker threads for [`EngineMode::Parallel`] kernel phases,
    /// clamped to `[1, n_gpus]`. Ignored by the sequential engines.
    sim_threads: u32,
    /// Live worker crew while a parallel kernel phase is running; the
    /// tick arms route shard edges through it. Always `None` outside
    /// [`System::run_kernel_phase_parallel`].
    par: Option<std::sync::Arc<par::ParCrew>>,
    /// Record engine wake events into the trace.
    trace_engine: bool,
    now: Fs,

    traffic: TrafficMatrix,
    timed_out: bool,

    /// Pending resolved faults per owning clock domain, each queue sorted
    /// by edge time (ties in plan order).
    fault_q: [VecDeque<ResolvedFault>; domain::COUNT],
    faults_injected: u64,
    faults_skipped: u64,
    failed_requests: u64,
    rebalanced_ctas: u64,
    lost_gpus: u64,

    tracer: Option<Tracer>,
    /// Runtime invariant auditor; `None` unless sanitizing.
    san: Option<Sanitizer>,
    metrics: Option<MetricsRegistry>,
    /// Driver-loop profiling state; `None` unless profiling.
    prof: Option<ProfPack>,
    /// Network cycles between metrics epochs; 0 disables snapshots.
    metrics_every: u64,
    /// Network cycle at which the next epoch is due.
    next_epoch: u64,
    steal_events: u64,
}

impl System {
    fn try_build(b: SimBuilder) -> Result<System, SimError> {
        let cfg = b.cfg.clone();
        cfg.validate().map_err(SimError::InvalidConfig)?;
        let workload = b.workload.clone().ok_or(SimError::MissingWorkload)?;
        let n_gpus = cfg.n_gpus as usize;
        let local = cfg.hmcs_per_gpu as usize;
        let cpu_cluster = n_gpus as u32;

        let mut params = NocParams::from_config(&cfg.noc);
        params.seed = cfg.seed;
        let mut nb = NetworkBuilder::new(params);
        nb.routing(b.routing);

        // Build the graph per organization.
        let (gpu_eps, cpu_ep, hmc_eps) = match b.org {
            Organization::Umn => {
                // All clusters (GPUs first, CPU last) in one memory network.
                let c = build_clusters(
                    &mut nb,
                    n_gpus + 1,
                    local,
                    cfg.noc.channels_per_device,
                    b.topology,
                );
                if b.overlay {
                    add_cpu_overlay(&mut nb, &c, n_gpus);
                }
                let gpu_eps = c.device_eps[..n_gpus].to_vec();
                let cpu_ep = c.device_eps[n_gpus];
                (gpu_eps, cpu_ep, c.hmc_eps_flat())
            }
            Organization::Pcie | Organization::PcieZc | Organization::Gmn | Organization::GmnZc => {
                let gpu_topo = match b.org {
                    Organization::Gmn | Organization::GmnZc => b.topology,
                    _ => TopologyKind::Isolated,
                };
                let g = build_clusters(
                    &mut nb,
                    n_gpus,
                    local,
                    cfg.noc.channels_per_device,
                    gpu_topo,
                );
                let c = build_clusters(
                    &mut nb,
                    1,
                    local,
                    cfg.noc.channels_per_device,
                    TopologyKind::Isolated,
                );
                let mut devs = g.device_routers.clone();
                devs.push(c.device_routers[0]);
                let _switch = add_pcie_tree(&mut nb, &devs, cfg.pcie.latency_ns);
                let mut hmc_eps = g.hmc_eps_flat();
                hmc_eps.extend(c.hmc_eps_flat());
                (g.device_eps.clone(), c.device_eps[0], hmc_eps)
            }
            Organization::Pcn => {
                // Processor-centric network: every device pair gets a
                // direct NVLink-class channel; memories remain local.
                let g = build_clusters(
                    &mut nb,
                    n_gpus,
                    local,
                    cfg.noc.channels_per_device,
                    TopologyKind::Isolated,
                );
                let c = build_clusters(
                    &mut nb,
                    1,
                    local,
                    cfg.noc.channels_per_device,
                    TopologyKind::Isolated,
                );
                let mut devs = g.device_routers.clone();
                devs.push(c.device_routers[0]);
                for i in 0..devs.len() {
                    for j in i + 1..devs.len() {
                        nb.link(devs[i], devs[j], LinkSpec::hmc_channel(), LinkTag::Nvlink);
                    }
                }
                let mut hmc_eps = g.hmc_eps_flat();
                hmc_eps.extend(c.hmc_eps_flat());
                (g.device_eps.clone(), c.device_eps[0], hmc_eps)
            }
            Organization::Cmn | Organization::CmnZc => {
                let g = build_clusters(
                    &mut nb,
                    n_gpus,
                    local,
                    cfg.noc.channels_per_device,
                    TopologyKind::Isolated,
                );
                let c = build_clusters(
                    &mut nb,
                    1,
                    local,
                    cfg.noc.channels_per_device,
                    TopologyKind::Isolated,
                );
                // The CPU's HMCs form the memory network (fully connected),
                // and each GPU taps into it with two channels — replacing
                // the PCIe interface (Fig. 8(a)).
                let cpu_hmcs = &c.hmc_routers[0];
                for i in 0..cpu_hmcs.len() {
                    for j in i + 1..cpu_hmcs.len() {
                        nb.link(
                            cpu_hmcs[i],
                            cpu_hmcs[j],
                            LinkSpec::hmc_channel(),
                            LinkTag::HmcHmc,
                        );
                    }
                }
                for (gi, &gr) in g.device_routers.iter().enumerate() {
                    nb.link(
                        gr,
                        cpu_hmcs[gi % cpu_hmcs.len()],
                        LinkSpec::hmc_channel(),
                        LinkTag::DeviceHmc,
                    );
                    nb.link(
                        gr,
                        cpu_hmcs[(gi + 1) % cpu_hmcs.len()],
                        LinkSpec::hmc_channel(),
                        LinkTag::DeviceHmc,
                    );
                }
                let mut hmc_eps = g.hmc_eps_flat();
                hmc_eps.extend(c.hmc_eps_flat());
                (g.device_eps.clone(), c.device_eps[0], hmc_eps)
            }
        };
        let net = nb.build();

        // Memory layout: regions per data-residency policy. Co-workloads
        // stack above the primary footprint at page-aligned bases.
        let mut co_workloads: Vec<(WorkloadSpec, u64)> = Vec::new();
        let mut next_base = workload
            .footprint_bytes()
            .max(4096)
            .div_ceil(cfg.page_bytes)
            * cfg.page_bytes;
        for w in &b.co_workloads {
            assert!(
                w.host_pre.is_none() && w.host_post.is_none(),
                "co-workloads cannot have host compute phases"
            );
            co_workloads.push((w.clone(), next_base));
            next_base += w.footprint_bytes().max(4096).div_ceil(cfg.page_bytes) * cfg.page_bytes;
        }
        let fp = next_base.max(4096);
        let mut layout = MemoryLayout::new(&cfg, cpu_cluster + 1);
        layout.set_policy(b.placement);
        let device_clusters: Vec<u32> = match b.org {
            Organization::PcieZc | Organization::CmnZc | Organization::GmnZc => vec![cpu_cluster],
            Organization::Umn => (0..=cpu_cluster).collect(),
            _ => b
                .data_clusters
                .clone()
                .unwrap_or_else(|| (0..cpu_cluster).collect()),
        };
        layout.add_region(0, fp, &device_clusters);
        layout.add_region(HOST_BASE, fp, &[cpu_cluster]);

        let gpus: Vec<Gpu> = (0..n_gpus)
            .map(|g| Gpu::new(GpuId(g as u16), &cfg.gpu))
            .collect();
        let hmcs: Vec<HmcDevice> = (0..hmc_eps.len())
            .map(|_| HmcDevice::new(&cfg.hmc))
            .collect();
        let hmc_ports = (0..hmc_eps.len()).map(|_| HmcPort::default()).collect();
        let traffic = TrafficMatrix::new(n_gpus + 1, hmc_eps.len());

        let clk_core = Clock::from_freq_mhz(cfg.gpu.core_mhz);
        let clk_l2 = Clock::from_freq_mhz(cfg.gpu.l2_mhz);
        let clk_cpu = Clock::from_freq_mhz(cfg.cpu.freq_mhz);
        let clk_net = Clock::from_freq_mhz(cfg.noc.router_mhz);
        let clk_dram = Clock::new(memnet_common::time::ns_to_fs(cfg.hmc.tck_ns));
        let tracer = b.trace_capacity.map(|cap| {
            let mut t = Tracer::new(cap);
            t.set_clock(ClockDomain::Core, clk_core.period_fs() as f64);
            t.set_clock(ClockDomain::L2, clk_l2.period_fs() as f64);
            t.set_clock(ClockDomain::Cpu, clk_cpu.period_fs() as f64);
            t.set_clock(ClockDomain::Net, clk_net.period_fs() as f64);
            t.set_clock(ClockDomain::Dram, clk_dram.period_fs() as f64);
            t
        });
        let metrics_every = b.metrics_every.unwrap_or(0);

        // Pin every fault-plan event to the first clock edge of its
        // owning domain at or after its timestamp — pure clock
        // arithmetic, identical under both engine modes.
        let periods = [
            clk_core.period_fs(),
            clk_l2.period_fs(),
            clk_cpu.period_fs(),
            clk_net.period_fs(),
            clk_dram.period_fs(),
        ];
        let (resolved, faults_skipped) = resolve_plan(
            &b.faults,
            &net,
            hmc_eps.len(),
            n_gpus,
            FaultOwners {
                net: domain::NET,
                dram: domain::DRAM,
                core: domain::CORE,
            },
            &periods,
        );
        let mut fault_q: [VecDeque<ResolvedFault>; domain::COUNT] = Default::default();
        for f in resolved {
            fault_q[f.owner].push_back(f);
        }

        Ok(System {
            active_gpus: b.active_gpus.unwrap_or(cfg.n_gpus).min(cfg.n_gpus),
            use_overlay: b.overlay,
            phase_budget: (b.phase_budget_ns * 1e6) as Fs,
            cpu: CpuCore::new(CpuId(0), &cfg.cpu),
            dma: DmaEngine::new(CpuId(0), 32),
            // Domain order must match the `domain` constants.
            cal: Calendar::new(vec![clk_core, clk_l2, clk_cpu, clk_net, clk_dram]),
            park: b.engine_mode == EngineMode::EventDriven,
            engine_mode: b.engine_mode,
            sim_threads: b
                .sim_threads
                .or_else(|| {
                    std::env::var("MEMNET_SIM_THREADS")
                        .ok()
                        .and_then(|v| v.parse().ok())
                })
                .unwrap_or_else(memnet_engine::pdes::default_threads)
                .clamp(1, cfg.n_gpus),
            par: None,
            trace_engine: b.trace_engine,
            now: 0,
            timed_out: false,
            fault_q,
            faults_injected: 0,
            faults_skipped,
            failed_requests: 0,
            rebalanced_ctas: 0,
            lost_gpus: 0,
            tracer,
            san: b
                .sanitize
                .enabled()
                .then(|| Sanitizer::new(b.sanitize == SanitizeMode::Fatal)),
            metrics: (metrics_every > 0).then(MetricsRegistry::new),
            prof: b.profile.then(|| {
                ProfPack::new(if metrics_every > 0 {
                    metrics_every
                } else {
                    ProfPack::SAMPLE_EVERY
                })
            }),
            metrics_every,
            next_epoch: metrics_every,
            steal_events: 0,
            cta_policy: b.cta_policy,
            org: b.org,
            workload,
            co_workloads,
            cfg,
            net,
            gpus,
            gpu_eps,
            cpu_ep,
            hmcs,
            hmc_eps,
            hmc_ports,
            layout,
            traffic,
        })
    }

    fn run(self) -> SimReport {
        self.run_profiled().0
    }

    fn run_profiled(mut self) -> (SimReport, Option<ProfileReport>) {
        let (host_fs, memcpy_fs) = self.run_warmup();
        self.run_from_snapshot_point(host_fs, memcpy_fs)
    }

    /// Runs the pre-kernel prefix — host-pre compute plus the host→device
    /// copies (including co-workload staging) — and returns the elapsed
    /// `(host_fs, memcpy_fs)`. Ends at the quiescent pre-kernel phase
    /// boundary, which is also the checkpoint point.
    fn run_warmup(&mut self) -> (Fs, Fs) {
        let w = self.workload.clone();
        let mut host_fs: Fs = 0;
        let mut memcpy_fs: Fs = 0;

        let co = self.co_workloads.clone();
        if let Some(pre) = w.host_pre {
            let t0 = self.now;
            host_fs += self.run_host_phase(&pre);
            self.emit_phase("host-pre", t0);
        }
        if self.org.uses_memcpy() {
            let t0 = self.now;
            memcpy_fs += self.run_memcpy_phase(HOST_BASE, 0, w.h2d_bytes);
            for (cw, base) in &co {
                memcpy_fs += self.run_memcpy_phase(HOST_BASE + base, *base, cw.h2d_bytes);
            }
            self.emit_phase("memcpy-h2d", t0);
        }
        (host_fs, memcpy_fs)
    }

    /// Runs everything after the pre-kernel boundary: the SKE kernel, the
    /// device→host copies, host-post compute, end-of-run normalization and
    /// report assembly. `host_fs`/`memcpy_fs` carry the warmup phase times
    /// (from [`System::run_warmup`] or a restored snapshot).
    fn run_from_snapshot_point(
        mut self,
        host_fs: Fs,
        memcpy_fs: Fs,
    ) -> (SimReport, Option<ProfileReport>) {
        let w = self.workload.clone();
        let co = self.co_workloads.clone();
        let mut host_fs = host_fs;
        let mut memcpy_fs = memcpy_fs;
        let t0 = self.now;
        let kernel_fs = self.run_kernel_phase();
        self.emit_phase("kernel", t0);
        if self.org.uses_memcpy() {
            let t0 = self.now;
            if w.d2h_bytes > 0 {
                let wbase = w.kernel.shared_bytes + w.kernel.read_bytes;
                memcpy_fs += self.run_memcpy_phase(wbase, HOST_BASE + wbase, w.d2h_bytes);
            }
            for (cw, base) in &co {
                if cw.d2h_bytes > 0 {
                    let wbase = base + cw.kernel.shared_bytes + cw.kernel.read_bytes;
                    memcpy_fs += self.run_memcpy_phase(wbase, HOST_BASE + wbase, cw.d2h_bytes);
                }
            }
            self.emit_phase("memcpy-d2h", t0);
        }
        if let Some(post) = w.host_post {
            let t0 = self.now;
            host_fs += self.run_host_phase(&post);
            self.emit_phase("host-post", t0);
        }
        // Domains still parked at the end never saw a wake: bring their
        // clocks (and per-cycle counters — network idle energy and
        // utilization denominators) up to the final timestep, as the
        // cycle-stepped loop would have by ticking through the idle tail.
        self.prof_begin(ProfCat::FastForward);
        for d in 0..domain::COUNT {
            let skipped = self.cal.catch_up_parked(d, self.now);
            self.apply_skip(d, skipped);
        }
        self.prof_end(ProfCat::FastForward);
        self.sanitize_checkpoint("end-of-run");
        if self.metrics.is_some() {
            // Close the run with a final epoch so short runs get at least one.
            self.snapshot_metrics();
        }
        if std::env::var_os("MEMNET_ENGINE_STATS").is_some() {
            let s = self.cal.stats();
            eprintln!(
                "[engine] park={} timesteps={} parks={} wakes={} skipped_edges={}",
                self.park, s.timesteps, s.parks, s.wakes, s.skipped_edges
            );
        }

        let mut l1 = memnet_gpu::CacheStats::default();
        let mut l2 = memnet_gpu::CacheStats::default();
        let mut per_gpu = Vec::with_capacity(self.gpus.len());
        for g in &self.gpus {
            let s = g.stats();
            l1.merge(&s.l1);
            l2.merge(&s.l2);
            per_gpu.push(GpuSummary {
                l1_hit_rate: s.l1.read_hit_rate(),
                l2_hit_rate: s.l2.read_hit_rate(),
                ctas_done: s.ctas_done,
                mem_reqs: s.mem_reqs,
            });
        }
        let mut row_hits = 0u64;
        let mut row_total = 0u64;
        for h in &self.hmcs {
            let s = h.stats();
            row_hits += s.row_hits;
            row_total += s.served;
        }
        let trace_dropped = self.tracer.as_ref().map_or(0, Tracer::dropped);
        let prof_report = self.prof.take().map(|pack| {
            let engine = self.engine_mode.name();
            let mut pr = ProfileReport::from_profiler(&pack.profiler, engine);
            pr.hists = vec![
                ProfileHist {
                    name: "net.pkt_latency_cycles",
                    snap: HistSnapshot::of(&pack.lat_hist),
                },
                ProfileHist {
                    name: "net.vc_occupancy_flits",
                    snap: HistSnapshot::of(&pack.vc_hist),
                },
                ProfileHist {
                    name: "hmc.vault_queue_depth",
                    snap: HistSnapshot::of(&pack.vault_hist),
                },
            ];
            pr.net_cycles = self.net.cycle();
            pr.flit_hops = self.net.stats().flit_hops;
            pr.ctas_done = per_gpu.iter().map(|g| g.ctas_done).sum();
            pr.trace_dropped = trace_dropped;
            pr.heatmap = Heatmap {
                routers: self.net.router_utilization(),
                links: self.net.link_utilization(),
            };
            pr
        });
        let ns = self.cal.clock(domain::NET).period_fs() as f64 / 1e6;
        let report = SimReport {
            org: self.org,
            workload: self.workload.abbr.clone(),
            memcpy_ns: fs_to_ns(memcpy_fs),
            kernel_ns: fs_to_ns(kernel_fs),
            host_ns: fs_to_ns(host_fs),
            energy_mj: self.net.energy_mj(),
            l1_hit_rate: l1.read_hit_rate(),
            l2_hit_rate: l2.read_hit_rate(),
            avg_pkt_latency_ns: self.net.stats().latency.mean() * ns,
            avg_hops: self.net.stats().hops.mean(),
            row_hit_rate: if row_total == 0 {
                0.0
            } else {
                row_hits as f64 / row_total as f64
            },
            traffic: self.traffic.clone(),
            passthrough: self.net.stats().passthrough,
            nonminimal: self.net.stats().nonminimal,
            timed_out: self.timed_out,
            faults_injected: self.faults_injected,
            faults_skipped: self.faults_skipped,
            reroutes: self.net.stats().reroutes,
            retries: self.net.stats().retries,
            dead_letters: self.net.stats().dead_letters,
            failed_requests: self.failed_requests,
            rebalanced_ctas: self.rebalanced_ctas,
            lost_gpus: self.lost_gpus,
            per_gpu,
            channel_utilization: self.net.channel_utilization(),
            trace_json: self
                .tracer
                .as_ref()
                .map(|t| t.to_chrome_json(self.metrics.as_ref())),
            metrics_json: self.metrics.as_ref().map(ToJson::to_json_pretty),
            sanitizer: self.san.take().map(Sanitizer::into_report),
            trace_dropped,
        };
        (report, prof_report)
    }

    /// Runs the warmup prefix, captures the pre-kernel snapshot, then
    /// finishes the run normally. The parked clocks are normalized to the
    /// boundary first so the snapshot is a pure function of simulated
    /// time, not of engine parking decisions; skip accounting is additive,
    /// so the report stays bit-identical to an uncheckpointed run (with
    /// [`SimBuilder::trace_engine`] the normalization adds extra
    /// `EngineWake` trace events — engine traces are diagnostics, not part
    /// of the compared document).
    fn run_checkpointed(
        mut self,
        meta: &str,
        fingerprint: u64,
    ) -> Result<(SimReport, SystemSnapshot), SimError> {
        let (host_fs, memcpy_fs) = self.run_warmup();
        if self.timed_out {
            return Err(SimError::Snapshot(
                "warmup prefix hit the phase budget; refusing to checkpoint a timed-out run".into(),
            ));
        }
        self.prof_begin(ProfCat::FastForward);
        for d in 0..domain::COUNT {
            let skipped = self.cal.catch_up_parked(d, self.now);
            self.apply_skip(d, skipped);
        }
        self.prof_end(ProfCat::FastForward);
        let snap = self.take_snapshot(meta, fingerprint, host_fs, memcpy_fs);
        let (report, _prof) = self.run_from_snapshot_point(host_fs, memcpy_fs);
        Ok((report, snap))
    }

    /// Captures the full mutable simulation state at the normalized,
    /// quiescent pre-kernel boundary. Pure observers (tracer, metrics
    /// registry, profiler) are deliberately *not* part of a snapshot: a
    /// restored run starts them fresh, observing only its own suffix.
    fn take_snapshot(
        &self,
        meta: &str,
        fingerprint: u64,
        host_fs: Fs,
        memcpy_fs: Fs,
    ) -> SystemSnapshot {
        SystemSnapshot {
            fingerprint,
            meta: meta.to_string(),
            now: self.now,
            clock_cycles: (0..domain::COUNT)
                .map(|d| self.cal.clock(d).cycles())
                .collect(),
            host_fs,
            memcpy_fs,
            faults_injected: self.faults_injected,
            failed_requests: self.failed_requests,
            rebalanced_ctas: self.rebalanced_ctas,
            lost_gpus: self.lost_gpus,
            steal_events: self.steal_events,
            gpus: self.gpus.iter().map(Gpu::snapshot_state).collect(),
            cpu: self.cpu.snapshot_state(),
            dma: self.dma.snapshot_state(),
            hmcs: self.hmcs.iter().map(HmcDevice::snapshot_state).collect(),
            net: self.net.snapshot_state(),
            memory: self.layout.snapshot_state(),
            traffic_bytes: self.traffic.raw_bytes().to_vec(),
            sanitizer: self.san.as_ref().map(Sanitizer::snapshot_state),
        }
    }

    /// Overwrites mutable state from a snapshot taken on an identically
    /// configured system (enforced upstream by the fingerprint check).
    /// All clock domains come back armed; in event-driven mode idle
    /// domains tick one no-op edge and re-park, which yields the same
    /// counter end-state as the checkpointing run's bulk skip accounting.
    /// Pending resolved faults whose edge lies at or before the snapshot
    /// instant were already applied by the checkpointing run — their
    /// effects live in the restored component state — so they are dropped
    /// from the queue fronts.
    fn apply_snapshot(&mut self, s: &SystemSnapshot) {
        assert_eq!(
            s.clock_cycles.len(),
            domain::COUNT,
            "clock domain count mismatch on restore"
        );
        assert_eq!(
            s.gpus.len(),
            self.gpus.len(),
            "GPU count mismatch on restore"
        );
        assert_eq!(
            s.hmcs.len(),
            self.hmcs.len(),
            "HMC count mismatch on restore"
        );
        self.now = s.now;
        for d in 0..domain::COUNT {
            self.cal.restore_clock(d, s.clock_cycles[d]);
        }
        for (g, gs) in self.gpus.iter_mut().zip(&s.gpus) {
            g.restore_state(gs);
        }
        self.cpu.restore_state(&s.cpu);
        self.dma.restore_state(&s.dma);
        for (h, hs) in self.hmcs.iter_mut().zip(&s.hmcs) {
            h.restore_state(hs);
        }
        self.net.restore_state(&s.net);
        self.layout.restore_state(&s.memory);
        self.traffic.restore_bytes(&s.traffic_bytes);
        self.faults_injected = s.faults_injected;
        self.failed_requests = s.failed_requests;
        self.rebalanced_ctas = s.rebalanced_ctas;
        self.lost_gpus = s.lost_gpus;
        self.steal_events = s.steal_events;
        for q in &mut self.fault_q {
            while q.front().is_some_and(|f| f.edge_fs <= s.now) {
                q.pop_front();
            }
        }
        // The sanitizer's accumulated audit state carries over only when
        // the restoring run sanitizes too; its totals then match an
        // unbroken sanitized run. A snapshot from a non-sanitized run
        // restores with counters starting at the boundary.
        if let (Some(san), Some(ss)) = (self.san.as_mut(), s.sanitizer.as_ref()) {
            san.restore_state(ss);
        }
        // First epoch lands on the next whole period after the restored
        // network clock, exactly where the checkpointing run would have
        // taken it (`None` when metric snapshots are disabled).
        if let Some(periods) = self.net.cycle().checked_div(self.metrics_every) {
            self.next_epoch = (periods + 1) * self.metrics_every;
        }
    }

    /// Records a phase span from `start` to now (no-op without a tracer)
    /// and a profiler phase mark (no-op unless profiling).
    fn emit_phase(&mut self, name: &'static str, start: Fs) {
        let (now, tracer) = (self.now, self.tracer.as_mut());
        if let Some(t) = tracer {
            t.emit_fs(start, now - start, TraceEventKind::Phase { name });
        }
        if let Some(p) = self.prof.as_mut() {
            p.profiler.phase_mark(name);
        }
    }

    /// Full structural audit at a phase boundary: fabric credit and packet
    /// conservation plus calendar edge alignment. The only place the
    /// sanitizer's check counter advances — phase boundaries are reached
    /// identically under both [`EngineMode`]s, so clean reports stay
    /// bit-identical across engines (per-tick audit *counts* would not be:
    /// the event-driven engine skips idle ticks).
    fn sanitize_checkpoint(&mut self, phase: &'static str) {
        let Some(mut s) = self.san.take() else {
            return;
        };
        s.checkpoint();
        let mut found: Vec<String> = self
            .net
            .audit()
            .into_iter()
            .map(|v| format!("{phase}: net: {v}"))
            .collect();
        for d in self.cal.misaligned() {
            found.push(format!(
                "{phase}: clock domain {} fell off its edge grid (next_fs != cycles * period_fs)",
                domain::name(d)
            ));
        }
        for v in found {
            let (now, tracer) = (self.now, self.tracer.as_mut());
            if let Some(t) = tracer {
                t.emit_fs(
                    now,
                    0,
                    TraceEventKind::SanitizerViolation { message: v.clone() },
                );
            }
            s.record(v);
        }
        self.san = Some(s);
    }

    /// Publishes live gauges plus cumulative counters and records one epoch.
    fn snapshot_metrics(&mut self) {
        let Some(m) = self.metrics.as_mut() else {
            return;
        };
        let flits = self.net.stats().flits_injected;
        let delta = flits - m.counter("net.flits_injected");
        m.add("net.flits_injected", delta);
        let delta = self.steal_events - m.counter("ske.cta_steals");
        m.add("ske.cta_steals", delta);
        let delta = self.faults_injected - m.counter("faults.injected");
        m.add("faults.injected", delta);
        let delta = self.net.stats().reroutes - m.counter("net.reroutes");
        m.add("net.reroutes", delta);
        let delta = self.net.stats().retries - m.counter("net.retries");
        m.add("net.retries", delta);
        let delta = self.net.stats().dead_letters - m.counter("net.dead_letters");
        m.add("net.dead_letters", delta);
        let delta = self.failed_requests - m.counter("faults.failed_requests");
        m.add("faults.failed_requests", delta);
        let delta = self.rebalanced_ctas - m.counter("ske.rebalanced_ctas");
        m.add("ske.rebalanced_ctas", delta);
        if let Some(t) = self.tracer.as_ref() {
            let delta = t.dropped() - m.counter("trace.dropped");
            m.add("trace.dropped", delta);
        }
        for (i, g) in self.gpus.iter().enumerate() {
            m.set_entity("gpu", i, "occupancy", g.occupancy());
        }
        for (i, h) in self.hmcs.iter().enumerate() {
            m.set_entity("hmc", i, "vault_queue", h.queued() as f64);
        }
        m.set("cpu.outstanding", f64::from(self.cpu.outstanding()));
        m.set("dma.reads_inflight", f64::from(self.dma.reads_inflight()));
        // Queue-depth distributions, one sample per entity per epoch.
        self.net
            .sample_vc_occupancy(|occ| m.record_hist("net.vc_occupancy_flits", occ));
        for h in &self.hmcs {
            h.sample_vault_depths(|d| m.record_hist("hmc.vault_queue_depth", d));
        }
        m.snapshot(self.now);
    }

    /// Runs until `done` holds; returns elapsed simulated time.
    fn run_phase(&mut self, done: impl Fn(&System) -> bool) -> Fs {
        let start = self.now;
        while !done(self) {
            if !self.advance() {
                // Every domain parked: nothing can make progress, which
                // the phase-done predicates all imply.
                break;
            }
            if self.now - start > self.phase_budget {
                self.timed_out = true;
                break;
            }
        }
        self.now - start
    }

    fn memory_system_idle(s: &System) -> bool {
        !s.net.has_work()
            && s.hmcs.iter().all(|h| !h.has_work())
            && s.hmc_ports
                .iter()
                .all(|p| p.deferred.is_none() && p.resp_q.is_empty())
    }

    fn run_host_phase(&mut self, work: &HostWork) -> Fs {
        // Host work addresses are device-space offsets; when the host owns
        // a staging copy, it reads that copy instead.
        let mut w = *work;
        if self.org.uses_memcpy() {
            w.region_base += HOST_BASE;
        }
        let stream: CpuStream = w.stream();
        self.cpu.run_program(stream);
        let t = self.run_phase(|s| !s.cpu.busy() && Self::memory_system_idle(s));
        self.sanitize_checkpoint("host");
        t
    }

    fn run_memcpy_phase(&mut self, src: u64, dst: u64, bytes: u64) -> Fs {
        if bytes == 0 {
            return 0;
        }
        let copied_before = self.dma.bytes_copied();
        self.dma.start_copy(src, dst, bytes);
        let t = self.run_phase(|s| !s.dma.busy() && Self::memory_system_idle(s));
        self.sanitize_checkpoint("memcpy");
        if let Some(s) = self.san.as_mut() {
            // Byte conservation: a completed copy moved exactly what was
            // asked for, even when fail-fast recovery synthesized some of
            // the read responses. Skipped if any phase ran out of budget —
            // a truncated copy is reported via `timed_out`, not here.
            let copied = self.dma.bytes_copied() - copied_before;
            if !self.timed_out && copied != bytes {
                s.record(format!(
                    "memcpy: byte conservation broken: copied {copied} of {bytes} \
                     requested ({src:#x} -> {dst:#x})"
                ));
            }
        }
        t
    }

    fn run_kernel_phase(&mut self) -> Fs {
        // Parallel engine: wrap this same phase in a worker crew (the
        // recursive call lands below because `par` is then occupied).
        // One worker would only add sync overhead to identical results.
        if self.engine_mode == EngineMode::Parallel
            && self.par.is_none()
            && self.sim_threads > 1
            && self.gpus.len() > 1
        {
            return self.run_kernel_phase_parallel();
        }
        // Launch across the GPUs still alive — a GPU lost in an earlier
        // phase is simply excluded from the partition (SKE degraded mode).
        let live: Vec<usize> = (0..self.active_gpus as usize)
            .filter(|&g| !self.gpus[g].is_dead())
            .collect();
        if live.is_empty() {
            return 0;
        }
        let queues = ske::partition(
            self.workload.kernel.ctas,
            live.len() as u32,
            self.cta_policy,
        );
        for (qi, q) in queues.into_iter().enumerate() {
            if let Some(s) = self.san.as_mut() {
                s.ctas_launched += q.len() as u64;
            }
            self.gpus[live[qi]].launch(self.workload.kernel.clone(), q);
        }
        // Concurrent kernel execution: co-launch the extra kernels with
        // offset address spaces and interleave CTA queues so they share
        // every GPU.
        for (cw, base) in &self.co_workloads {
            let model = std::sync::Arc::new(memnet_gpu::kernel::OffsetKernel::new(
                cw.kernel.clone(),
                *base,
            ));
            let queues = ske::partition(cw.kernel.ctas, live.len() as u32, self.cta_policy);
            for (qi, q) in queues.into_iter().enumerate() {
                if let Some(s) = self.san.as_mut() {
                    s.ctas_launched += q.len() as u64;
                }
                self.gpus[live[qi]].launch(model.clone(), q);
            }
        }
        let n_kernels = 1 + self.co_workloads.len();
        for &g in &live {
            self.gpus[g].interleave_pending(n_kernels);
        }
        let steals = self.cta_policy.steals();
        let start = self.now;
        let mut last_steal = 0u64;
        loop {
            let done = self.gpus.iter().all(|g| !g.busy()) && Self::memory_system_idle(self);
            if done {
                break;
            }
            if !self.advance() {
                break;
            }
            let core_cycles = self.cal.clock(domain::CORE).cycles();
            if steals && core_cycles > last_steal + 2000 {
                last_steal = core_cycles;
                self.steal_ctas();
            }
            if self.now - start > self.phase_budget {
                self.timed_out = true;
                break;
            }
        }
        self.sanitize_checkpoint("kernel");
        if let Some(s) = self.san.as_mut() {
            // CTA conservation: every CTA handed to a GPU either retired
            // or was dropped with a dead GPU when no survivor could adopt
            // it (rebalanced CTAs retire on their adoptive GPU). Skipped
            // on budget exhaustion — an unfinished kernel legitimately
            // leaves CTAs resident.
            let done: u64 = self.gpus.iter().map(|g| g.stats().ctas_done).sum();
            if !self.timed_out && done + s.ctas_dropped != s.ctas_launched {
                s.record(format!(
                    "kernel: CTA conservation broken: launched {} != completed {} \
                     + dropped-with-dead-gpu {}",
                    s.ctas_launched, done, s.ctas_dropped
                ));
            }
        }
        self.now - start
    }

    /// Two-level dynamic scheduling: idle GPUs steal undispatched CTAs.
    fn steal_ctas(&mut self) {
        let active = self.active_gpus as usize;
        let pending: Vec<usize> = self.gpus[..active]
            .iter()
            .map(|g| g.pending_ctas())
            .collect();
        for thief in 0..active {
            if pending[thief] > 0 || self.gpus[thief].is_dead() {
                continue;
            }
            if let Some((victim, count)) = ske::pick_steal(&pending) {
                if victim != thief && count > 0 {
                    let stolen = self.gpus[victim].steal(count);
                    let moved = stolen.len() as u32;
                    self.gpus[thief].donate(stolen);
                    if moved > 0 {
                        self.steal_events += 1;
                        if let Some(t) = self.tracer.as_mut() {
                            t.emit_instant(
                                ClockDomain::Core,
                                self.cal.clock(domain::CORE).cycles(),
                                TraceEventKind::CtaSteal {
                                    victim: victim as u32,
                                    thief: thief as u32,
                                    count: moved,
                                },
                            );
                        }
                    }
                    break; // one steal per scan keeps it simple and rare
                }
            }
        }
    }

    /// True while ticking domain `d` can do real work. Parking is only
    /// legal when this is false *and* stays false until some other domain
    /// (or phase setup) hands the components new work — every predicate
    /// below is monotone in that sense.
    fn domain_active(&self, d: usize) -> bool {
        match d {
            // A GPU stays busy from kernel launch until its last response
            // is consumed (`Gpu::busy` covers outstanding routes), so the
            // core domain is never parked while replies are in flight —
            // crossbar release times computed from `core_cycle` stay
            // exact. The L2 services the same work, on the same signal.
            domain::CORE | domain::L2 => self.gpus.iter().any(|g| !g.is_idle()),
            domain::CPU => !self.cpu.is_idle() || !self.dma.is_idle(),
            // The net domain also hosts the metrics heartbeat: epoch
            // snapshots ride net ticks and sample *live* gauges of other
            // components, so with metrics enabled the domain is pinned
            // active — synthesized catch-up epochs could not be
            // bit-identical.
            domain::NET => {
                self.metrics.is_some()
                    || !self.net.is_quiescent()
                    || self
                        .hmc_ports
                        .iter()
                        .any(|p| p.deferred.is_some() || !p.resp_q.is_empty())
                    || self.gpus.iter().any(Gpu::has_mem_request)
                    || self.cpu.has_mem_request()
                    || self.dma.has_mem_request()
            }
            domain::DRAM => self.hmcs.iter().any(HmcDevice::has_work),
            _ => unreachable!("unknown clock domain {d}"),
        }
    }

    /// Catches per-tick counters up over `skipped` no-op edges of a woken
    /// domain, so downstream figures (crossbar timestamps, idle channel
    /// energy, utilization denominators, epoch numbering) match a run
    /// that ticked through the idle stretch.
    fn apply_skip(&mut self, d: usize, skipped: u64) {
        if skipped == 0 {
            return;
        }
        match d {
            domain::CORE => {
                for g in &mut self.gpus {
                    g.skip_idle_cycles(skipped);
                }
            }
            domain::NET => self.net.skip_idle_cycles(skipped),
            // L2 and DRAM keep no counter of their own (they read the
            // core clock and the DRAM clock's cycle count respectively),
            // and the CPU core's internal cycle is purely relative.
            domain::L2 | domain::CPU | domain::DRAM => {}
            _ => unreachable!("unknown clock domain {d}"),
        }
        if self.trace_engine {
            let (now, tracer) = (self.now, self.tracer.as_mut());
            if let Some(t) = tracer {
                t.emit_fs(
                    now,
                    0,
                    TraceEventKind::EngineWake {
                        domain: domain::name(d),
                        skipped,
                    },
                );
            }
        }
    }

    /// Wakes domain `d` at its first edge strictly after `self.now`.
    /// Used at the top of a timestep for work produced by a
    /// later-priority domain in an earlier timestep, or by phase setup:
    /// in the cycle-stepped loop, `d`'s edges at or before that point had
    /// already ticked (as no-ops) when the work appeared.
    fn wake_after_now(&mut self, d: usize) {
        let skipped = self.cal.wake_after(d, self.now);
        self.apply_skip(d, skipped);
    }

    /// Wakes domain `d` at its first edge at or after `self.now`. Used
    /// within a timestep, before `d`'s tick slot, for work produced by an
    /// earlier-priority domain at this very timestep: if `d` has an edge
    /// here, the cycle-stepped loop would have it act on the work now.
    fn wake_at_or_after_now(&mut self, d: usize) {
        let skipped = self.cal.wake_at_or_after(d, self.now);
        self.apply_skip(d, skipped);
    }

    /// Applies every pending fault owned by domain `d` whose edge has
    /// arrived. Called just before `d`'s tick so the fault's effect is
    /// visible to that very tick — in both engine modes, at the same edge.
    fn apply_due_faults(&mut self, d: usize) {
        while self.fault_q[d]
            .front()
            .is_some_and(|f| f.edge_fs <= self.now)
        {
            // memnet-lint: allow(tick-unwrap, the pop follows a front() check in the loop condition)
            let f = self.fault_q[d].pop_front().expect("checked front");
            self.apply_fault(&f);
        }
    }

    fn apply_fault(&mut self, f: &ResolvedFault) {
        match f.action {
            FaultAction::LinkDown(li) => self.net.set_link_state(li, false),
            FaultAction::LinkUp(li) => self.net.set_link_state(li, true),
            FaultAction::LinkDegrade(li, factor) => self.net.degrade_link(li, factor),
            FaultAction::VaultStall {
                hmc,
                vault,
                stall_tcks,
            } => {
                let tck = self.cal.clock(domain::DRAM).cycles();
                self.hmcs[hmc].stall_vault(vault, tck + stall_tcks);
            }
            FaultAction::GpuLoss(g) => self.apply_gpu_loss(g),
        }
        self.faults_injected += 1;
        let (now, tracer) = (self.now, self.tracer.as_mut());
        if let Some(t) = tracer {
            t.emit_fs(
                now,
                0,
                TraceEventKind::Fault {
                    kind: f.kind,
                    target: f.target,
                    detail: f.detail,
                },
            );
        }
    }

    /// Kills GPU `g` and rebalances its unfinished CTAs onto surviving
    /// active GPUs — contiguous re-chunks for the static policies
    /// (preserving what locality is left), round-robin for the stealing
    /// policy (whose steal loop keeps the balance dynamic afterwards).
    fn apply_gpu_loss(&mut self, g: usize) {
        if self.gpus[g].is_dead() {
            return;
        }
        let orphans = self.gpus[g].fail();
        self.lost_gpus += 1;
        let survivors: Vec<usize> = (0..self.active_gpus as usize)
            .filter(|&i| !self.gpus[i].is_dead())
            .collect();
        if survivors.is_empty() || orphans.is_empty() {
            if let Some(s) = self.san.as_mut() {
                // No adoptive GPU: the orphans are gone for good, and the
                // CTA conservation law must account for them.
                s.ctas_dropped += orphans.len() as u64;
            }
            return;
        }
        self.rebalanced_ctas += orphans.len() as u64;
        let k = survivors.len();
        match self.cta_policy {
            CtaPolicy::StaticChunk | CtaPolicy::RoundRobin => {
                let per = orphans.len().div_ceil(k);
                let mut it = orphans.into_iter();
                for &s in &survivors {
                    let chunk: Vec<_> = it.by_ref().take(per).collect();
                    self.gpus[s].donate(chunk);
                }
            }
            CtaPolicy::Stealing => {
                let mut queues: Vec<Vec<_>> = (0..k).map(|_| Vec::new()).collect();
                for (i, o) in orphans.into_iter().enumerate() {
                    queues[i % k].push(o);
                }
                for (&s, q) in survivors.iter().zip(queues) {
                    self.gpus[s].donate(q);
                }
            }
        }
    }

    /// Completes a request the network could not deliver through the
    /// fail-fast recovery path: reads get an immediate synthesized
    /// response (so waiters make progress instead of hanging), writes
    /// just drop, and everything is counted in `failed_requests`.
    fn fail_request(&mut self, req: MemReq) {
        self.failed_requests += 1;
        if !req.kind.returns_data() {
            return;
        }
        self.deliver_response(req.response());
    }

    /// Hands a response straight to its requester, bypassing the network
    /// (recovery delivery for dead-lettered packets). Responses to dead
    /// GPUs are dropped — the requester no longer exists.
    fn deliver_response(&mut self, resp: MemResp) {
        match resp.src {
            Agent::Gpu(g) => {
                if !self.gpus[g.index()].is_dead() {
                    self.gpus[g.index()].push_mem_response(resp);
                }
            }
            Agent::Cpu(_) => self.cpu.push_mem_response(resp),
            Agent::Dma(_) => self.dma.push_mem_response(resp),
        }
    }

    /// Advances simulated time to the earliest pending clock edge of an
    /// armed domain and ticks every due domain once, re-arming parked
    /// domains that have work and parking domains that report idle.
    /// Returns false when every domain is parked (the system quiesced).
    ///
    /// With parking disabled this is exactly the original cycle-stepped
    /// loop: all five domains stay armed and tick at every edge.
    fn advance(&mut self) -> bool {
        // Re-arm parked domains that acquired work since their last
        // edge — from a later-priority producer last timestep, or from
        // phase setup (kernel launch, `start_copy`, `run_program`).
        // Waking replays the skipped idle window, so this is the
        // fast-forward cost bucket.
        self.prof_begin(ProfCat::FastForward);
        for d in 0..domain::COUNT {
            if self.cal.is_parked(d) && self.domain_active(d) {
                self.wake_after_now(d);
            }
        }
        self.prof_end(ProfCat::FastForward);
        self.prof_begin(ProfCat::CalendarAdvance);
        // Never let time jump past a pending fault's owner edge. The next
        // timestep is the earlier of the next armed clock edge and the
        // earliest pending fault edge; parked owners whose fault lands at
        // exactly that timestep are woken there (and only there — waking
        // an owner at a *later* fault edge would skip edges where work
        // produced this timestep should tick). Re-evaluated every
        // advance, so a fault inside a fast-forwarded idle window still
        // fires on its exact edge and both engine modes apply it at the
        // same simulated instant.
        let fault_next = self
            .fault_q
            .iter()
            .filter_map(|q| q.front().map(|f| f.edge_fs))
            .min();
        let next = match (self.cal.earliest(), fault_next) {
            (Some(a), Some(f)) => a.min(f),
            (Some(a), None) => a,
            (None, Some(f)) => f,
            (None, None) => {
                self.prof_end(ProfCat::CalendarAdvance);
                return false;
            }
        };
        for d in 0..domain::COUNT {
            // A pending fault edge below `next` is impossible (time never
            // passes one), so a front edge ≤ `next` means == `next`.
            if self.cal.is_parked(d) && self.fault_q[d].front().is_some_and(|f| f.edge_fs <= next) {
                let skipped = self.cal.wake_at_or_after(d, next);
                self.apply_skip(d, skipped);
            }
        }
        self.now = next;
        self.cal.count_timestep();
        self.prof_end(ProfCat::CalendarAdvance);

        for d in 0..domain::COUNT {
            // Work produced earlier in this same timestep (by a
            // higher-priority domain) re-arms `d` in time for a
            // coincident edge.
            if self.cal.is_parked(d) && self.domain_active(d) {
                self.wake_at_or_after_now(d);
            }
            if !self.cal.due(d, self.now) {
                continue;
            }
            self.apply_due_faults(d);
            let cat = Self::prof_cat(d);
            self.prof_begin(cat);
            self.tick_domain(d);
            self.prof_end(cat);
            self.cal.advance(d);
            if self.park && !self.domain_active(d) && !self.cal.is_parked(d) {
                self.cal.park(d);
            }
        }
        true
    }

    /// Profiler category for one clock domain's tick.
    fn prof_cat(d: usize) -> ProfCat {
        match d {
            domain::CORE => ProfCat::CoreTick,
            domain::L2 => ProfCat::L2Tick,
            domain::CPU => ProfCat::CpuTick,
            domain::NET => ProfCat::NetTick,
            domain::DRAM => ProfCat::DramTick,
            _ => unreachable!("unknown clock domain {d}"),
        }
    }

    /// Opens a profiler scope (no-op unless profiling).
    #[inline]
    fn prof_begin(&mut self, cat: ProfCat) {
        if let Some(p) = self.prof.as_mut() {
            p.profiler.begin(cat);
        }
    }

    /// Closes a profiler scope (no-op unless profiling).
    #[inline]
    fn prof_end(&mut self, cat: ProfCat) {
        if let Some(p) = self.prof.as_mut() {
            p.profiler.end(cat);
        }
    }

    /// One tick of one clock domain, in priority order within a timestep:
    /// GPU cores, GPU L2s, CPU+DMA, network, DRAM.
    fn tick_domain(&mut self, d: usize) {
        match d {
            domain::CORE => {
                if self.par.is_some() {
                    self.par_edge(par::EDGE_CORE, 0);
                } else {
                    for g in &mut self.gpus {
                        g.tick_core_traced(self.tracer.as_mut());
                    }
                }
            }
            domain::L2 => {
                if self.par.is_some() {
                    self.par_edge(par::EDGE_L2, 0);
                } else {
                    for g in &mut self.gpus {
                        g.tick_l2();
                    }
                }
            }
            domain::CPU => {
                self.cpu.tick();
                self.dma.tick();
            }
            domain::NET => {
                self.pump_into_network();
                self.net.tick_traced(self.tracer.as_mut());
                self.pump_out_of_network();
                if let Some(s) = self.san.as_mut() {
                    // O(1) per-tick law (the full credit audit is saved
                    // for phase boundaries): nothing the fabric accepted
                    // may leak or duplicate, at any cycle.
                    let st = self.net.stats();
                    let accounted = st.delivered + self.net.in_flight() + st.dead_letters;
                    if st.packets_injected != accounted {
                        s.record(format!(
                            "net cycle {}: packet conservation broken: injected {} != \
                             delivered {} + in-flight {} + dead-letters {}",
                            self.net.cycle(),
                            st.packets_injected,
                            st.delivered,
                            self.net.in_flight(),
                            st.dead_letters
                        ));
                    }
                }
                if self.metrics.is_some() && self.net.cycle() >= self.next_epoch {
                    self.next_epoch = self.net.cycle() + self.metrics_every;
                    self.snapshot_metrics();
                }
                // Profiler occupancy sampling: pure reads of queue state
                // into driver-owned histograms, never sim-visible.
                if let Some(p) = self.prof.as_mut() {
                    if self.net.cycle() >= p.next_sample {
                        p.next_sample = self.net.cycle() + p.sample_every;
                        let vc = &mut p.vc_hist;
                        self.net.sample_vc_occupancy(|occ| vc.record(occ));
                        let vault = &mut p.vault_hist;
                        for h in &self.hmcs {
                            h.sample_vault_depths(|d| vault.record(d));
                        }
                    }
                }
            }
            domain::DRAM => {
                let tck = self.cal.clock(domain::DRAM).cycles();
                if self.par.is_some() {
                    self.par_edge(par::EDGE_DRAM, tck);
                } else {
                    for (i, h) in self.hmcs.iter_mut().enumerate() {
                        h.tick_traced(tck, i as u32, self.tracer.as_mut());
                        while let Some(req) = h.pop_completed(tck) {
                            if req.kind.returns_data() {
                                self.hmc_ports[i].resp_q.push_back(req.response());
                            }
                        }
                    }
                }
            }
            _ => unreachable!("unknown clock domain {d}"),
        }
    }

    /// Moves device requests into the network. Requests keep their
    /// *virtual* addresses end-to-end (responses must echo the address the
    /// device issued); the physical location is resolved here to pick the
    /// destination HMC and again at the HMC to pick the vault.
    fn pump_into_network(&mut self) {
        let n_gpus = self.gpus.len();
        for g in 0..n_gpus {
            while self.net.inject_ready(self.gpu_eps[g]) {
                let Some(req) = self.gpus[g].pop_mem_request() else {
                    break;
                };
                let (_, loc) = self.layout.locate(req.addr);
                let hmc = loc.hmc_global(self.cfg.hmcs_per_gpu) as usize;
                if !self.net.route_exists(self.gpu_eps[g], self.hmc_eps[hmc]) {
                    self.fail_request(req);
                    continue;
                }
                let bytes = req.packet_bytes() as u64;
                self.traffic.add(g, hmc, bytes);
                self.net.inject(
                    self.gpu_eps[g],
                    self.hmc_eps[hmc],
                    MsgClass::Req,
                    Payload::Req(req),
                    false,
                );
                self.trace_inject(g as u16, hmc as u16, bytes as u32);
            }
        }
        // CPU core, then DMA, share the CPU endpoint.
        while self.net.inject_ready(self.cpu_ep) {
            let Some(req) = self.cpu.pop_mem_request() else {
                break;
            };
            let (_, loc) = self.layout.locate(req.addr);
            let hmc = loc.hmc_global(self.cfg.hmcs_per_gpu) as usize;
            if !self.net.route_exists(self.cpu_ep, self.hmc_eps[hmc]) {
                self.fail_request(req);
                continue;
            }
            let bytes = req.packet_bytes() as u64;
            self.traffic.add(n_gpus, hmc, bytes);
            self.net.inject(
                self.cpu_ep,
                self.hmc_eps[hmc],
                MsgClass::Req,
                Payload::Req(req),
                self.use_overlay,
            );
            self.trace_inject(n_gpus as u16, hmc as u16, bytes as u32);
        }
        while self.net.inject_ready(self.cpu_ep) {
            let Some(req) = self.dma.pop_mem_request() else {
                break;
            };
            let (_, loc) = self.layout.locate(req.addr);
            let hmc = loc.hmc_global(self.cfg.hmcs_per_gpu) as usize;
            if !self.net.route_exists(self.cpu_ep, self.hmc_eps[hmc]) {
                self.fail_request(req);
                continue;
            }
            let bytes = req.packet_bytes() as u64;
            self.traffic.add(n_gpus, hmc, bytes);
            self.net.inject(
                self.cpu_ep,
                self.hmc_eps[hmc],
                MsgClass::Req,
                Payload::Req(req),
                false,
            );
            self.trace_inject(n_gpus as u16, hmc as u16, bytes as u32);
        }
    }

    /// Records a request-injection instant (no-op without a tracer).
    fn trace_inject(&mut self, src: u16, dst: u16, bytes: u32) {
        let cycle = self.net.cycle();
        if let Some(t) = self.tracer.as_mut() {
            t.emit_instant(
                ClockDomain::Net,
                cycle,
                TraceEventKind::PacketInject {
                    src,
                    dst,
                    class: "req",
                    bytes,
                },
            );
        }
    }

    /// Delivers ejected packets: requests into vaults, responses to devices.
    fn pump_out_of_network(&mut self) {
        // Dead-lettered packets (no surviving route after a link cut)
        // complete through the fail-fast recovery path: requests get a
        // synthesized response, responses are delivered out-of-band.
        while let Some(fp) = self.net.poll_failed() {
            match fp.payload {
                Payload::Req(req) => self.fail_request(req),
                Payload::Resp(resp) => {
                    self.failed_requests += 1;
                    self.deliver_response(resp);
                }
            }
        }
        for i in 0..self.hmcs.len() {
            // Retry a vault-rejected request before accepting more.
            if let Some((req, loc)) = self.hmc_ports[i].deferred.take() {
                match self.hmcs[i].try_accept(req, loc.vault, loc.bank, loc.row) {
                    Ok(()) => {}
                    Err(r) => {
                        self.hmc_ports[i].deferred = Some((r, loc));
                    }
                }
            }
            while self.hmc_ports[i].deferred.is_none() {
                let Some(p) = self.net.poll_eject(self.hmc_eps[i]) else {
                    break;
                };
                let Payload::Req(req) = p.payload else {
                    debug_assert!(false, "response ejected at an HMC endpoint");
                    continue;
                };
                let (_, loc) = self.layout.locate(req.addr);
                debug_assert_eq!(
                    loc.hmc_global(self.cfg.hmcs_per_gpu) as usize,
                    i,
                    "request routed to wrong HMC"
                );
                if let Err(r) = self.hmcs[i].try_accept(req, loc.vault, loc.bank, loc.row) {
                    self.hmc_ports[i].deferred = Some((r, loc));
                }
            }
            // Inject completed responses back toward the requester; when a
            // cut stranded the return path, deliver out-of-band instead.
            while self.net.inject_ready(self.hmc_eps[i]) {
                let Some(resp) = self.hmc_ports[i].resp_q.pop_front() else {
                    break;
                };
                let (dest, overlay) = match resp.src {
                    Agent::Gpu(g) => (self.gpu_eps[g.index()], false),
                    Agent::Cpu(_) => (self.cpu_ep, self.use_overlay),
                    Agent::Dma(_) => (self.cpu_ep, false),
                };
                if !self.net.route_exists(self.hmc_eps[i], dest) {
                    self.failed_requests += 1;
                    self.deliver_response(resp);
                    continue;
                }
                self.net.inject(
                    self.hmc_eps[i],
                    dest,
                    MsgClass::Resp,
                    Payload::Resp(resp),
                    overlay,
                );
            }
        }
        for g in 0..self.gpus.len() {
            while let Some(p) = self.net.poll_eject(self.gpu_eps[g]) {
                self.trace_eject(g as u16, p.latency_cycles, p.hops);
                let Payload::Resp(resp) = p.payload else {
                    debug_assert!(false, "request ejected at a GPU endpoint");
                    continue;
                };
                if self.gpus[g].is_dead() {
                    // In-flight reply raced the GPU's death: account it.
                    self.failed_requests += 1;
                    continue;
                }
                self.gpus[g].push_mem_response(resp);
            }
        }
        while let Some(p) = self.net.poll_eject(self.cpu_ep) {
            self.trace_eject(self.gpus.len() as u16, p.latency_cycles, p.hops);
            let Payload::Resp(resp) = p.payload else {
                debug_assert!(false, "request ejected at the CPU endpoint");
                continue;
            };
            match resp.src {
                Agent::Cpu(_) => self.cpu.push_mem_response(resp),
                Agent::Dma(_) => self.dma.push_mem_response(resp),
                Agent::Gpu(_) => debug_assert!(false, "GPU response at CPU endpoint"),
            }
        }
    }

    /// Records a response-ejection instant at device endpoint `dst`
    /// (no-op without a tracer), plus the latency sample for the
    /// profiling and metrics histograms when either is enabled.
    fn trace_eject(&mut self, dst: u16, latency_cycles: u64, hops: u32) {
        let cycle = self.net.cycle();
        if let Some(t) = self.tracer.as_mut() {
            t.emit_instant(
                ClockDomain::Net,
                cycle,
                TraceEventKind::PacketEject {
                    dst,
                    latency_cycles,
                    hops,
                },
            );
        }
        if let Some(p) = self.prof.as_mut() {
            p.lat_hist.record(latency_cycles);
        }
        if let Some(m) = self.metrics.as_mut() {
            m.record_hist("net.pkt_latency_cycles", latency_cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_workloads::Workload;

    fn small(org: Organization) -> SimReport {
        SimBuilder::new(org)
            .gpus(2)
            .sms_per_gpu(2)
            .workload(Workload::VecAdd.spec_small())
            .run()
    }

    #[test]
    fn umn_runs_and_reports() {
        let r = small(Organization::Umn);
        assert!(!r.timed_out, "UMN run must finish");
        assert!(r.kernel_ns > 0.0);
        assert_eq!(r.memcpy_ns, 0.0, "UMN never copies");
        assert!(r.energy_mj > 0.0);
        assert!(r.traffic.total() > 0);
    }

    #[test]
    fn pcie_has_memcpy_time() {
        let r = small(Organization::Pcie);
        assert!(!r.timed_out);
        assert!(r.memcpy_ns > 0.0, "PCIe org stages data");
        assert!(r.kernel_ns > 0.0);
    }

    #[test]
    fn zero_copy_orgs_skip_memcpy() {
        for org in [
            Organization::PcieZc,
            Organization::CmnZc,
            Organization::GmnZc,
        ] {
            let r = small(org);
            assert!(!r.timed_out, "{} must finish", org.name());
            assert_eq!(r.memcpy_ns, 0.0, "{}", org.name());
        }
    }

    #[test]
    fn all_organizations_complete() {
        for org in Organization::all() {
            let r = small(org);
            assert!(!r.timed_out, "{} timed out", org.name());
            assert!(r.kernel_ns > 0.0, "{}", org.name());
        }
    }

    #[test]
    fn umn_beats_pcie_on_total_runtime() {
        // The headline Fig. 14 result, on a tiny configuration.
        let pcie = small(Organization::Pcie);
        let umn = small(Organization::Umn);
        assert!(
            umn.total_ns() < pcie.total_ns(),
            "UMN {:.0} ns should beat PCIe {:.0} ns",
            umn.total_ns(),
            pcie.total_ns()
        );
    }

    #[test]
    fn concurrent_kernels_complete_and_overlap() {
        use memnet_workloads::Workload as W;
        let iso = |w: Workload| {
            SimBuilder::new(Organization::Umn)
                .gpus(2)
                .sms_per_gpu(2)
                .workload(w.spec_small())
                .run()
        };
        let cp = iso(W::Cp);
        let scan = iso(W::Scan);
        // Concurrent: compute-bound CP + bandwidth-bound SCAN co-scheduled.
        let both = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .workload(W::Cp.spec_small())
            .co_workload(W::Scan.spec_small())
            .run();
        assert!(!both.timed_out);
        // Sandwich: real concurrency means the co-run takes at least as
        // long as the slower kernel alone. The upper bound is loose:
        // co-resident kernels share L1/L2 capacity, so cache contention can
        // make co-scheduling somewhat slower than back-to-back execution —
        // a well-known CKE effect this model reproduces.
        let slower = cp.kernel_ns.max(scan.kernel_ns);
        let serial = cp.kernel_ns + scan.kernel_ns;
        assert!(
            both.kernel_ns >= slower * 0.95,
            "CKE {} vs slower {}",
            both.kernel_ns,
            slower
        );
        assert!(
            both.kernel_ns <= serial * 1.30,
            "CKE {} vs serial {}",
            both.kernel_ns,
            serial
        );
    }

    #[test]
    fn concurrent_kernels_use_disjoint_regions() {
        use memnet_workloads::Workload as W;
        // Runs to completion without address-space collisions (regions are
        // page-aligned and stacked); traffic exceeds the single-kernel run.
        let single = small(Organization::Umn);
        let multi = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .workload(W::VecAdd.spec_small())
            .co_workload(W::VecAdd.spec_small())
            .co_workload(W::VecAdd.spec_small())
            .run();
        assert!(!multi.timed_out);
        assert!(multi.traffic.total() > 2 * single.traffic.total());
    }

    #[test]
    #[should_panic(expected = "host compute phases")]
    fn co_workload_with_host_phases_panics() {
        use memnet_workloads::Workload as W;
        let _ = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .workload(W::VecAdd.spec_small())
            .co_workload(W::CgS.spec_small())
            .run();
    }

    #[test]
    fn pcn_beats_pcie_but_not_umn() {
        let pcie = small(Organization::Pcie);
        let pcn = small(Organization::Pcn);
        let umn = small(Organization::Umn);
        assert!(!pcn.timed_out);
        assert!(
            pcn.memcpy_ns > 0.0,
            "PCN stages data like the PCIe baseline"
        );
        assert!(
            pcn.total_ns() < pcie.total_ns(),
            "NVLink-class links beat PCIe"
        );
        assert!(umn.total_ns() < pcn.total_ns(), "memory-centric still wins");
    }

    #[test]
    fn contiguous_placement_concentrates_traffic() {
        use crate::memory::PlacementPolicy;
        let run = |p: PlacementPolicy| {
            SimBuilder::new(Organization::Umn)
                .gpus(2)
                .sms_per_gpu(2)
                .placement(p)
                .workload(Workload::Kmn.spec_small())
                .run()
        };
        let random = run(PlacementPolicy::Random);
        let contig = run(PlacementPolicy::Contiguous);
        assert!(!random.timed_out && !contig.timed_out);
        // Contiguous placement leaves whole clusters cold, so the hottest
        // HMC's share of total traffic rises.
        let hot_share = |r: &SimReport| {
            let cols = r.traffic.column_totals();
            *cols.iter().max().expect("cols") as f64 / r.traffic.total().max(1) as f64
        };
        assert!(
            hot_share(&contig) > hot_share(&random),
            "first-fit placement must concentrate traffic: {} vs {}",
            hot_share(&contig),
            hot_share(&random)
        );
    }

    #[test]
    fn deterministic_replay() {
        let a = small(Organization::Gmn);
        let b = small(Organization::Gmn);
        assert_eq!(a.kernel_ns, b.kernel_ns);
        assert_eq!(a.memcpy_ns, b.memcpy_ns);
        assert_eq!(a.traffic.total(), b.traffic.total());
    }

    #[test]
    fn fig7_data_restriction_works() {
        // Data on cluster 0 only vs spread over both: the traffic matrix
        // must reflect the restriction.
        let r = SimBuilder::new(Organization::Gmn)
            .gpus(2)
            .sms_per_gpu(2)
            .workload(Workload::VecAdd.spec_small())
            .data_clusters(vec![0])
            .active_gpus(1)
            .run();
        assert!(!r.timed_out);
        let cols = r.traffic.column_totals();
        let local: u64 = cols[0..4].iter().sum();
        let remote_gpu: u64 = cols[4..8].iter().sum();
        assert!(local > 0);
        assert_eq!(
            remote_gpu, 0,
            "no pages on cluster 1 ⇒ no kernel traffic there"
        );
    }

    #[test]
    fn cpu_workload_runs_host_phases() {
        let mut spec = Workload::CgS.spec_small();
        spec.kernel = std::sync::Arc::new({
            let mut k = (*spec.kernel).clone();
            k.ctas = 8;
            k.iters = 2;
            k
        });
        let r = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .workload(spec)
            .run();
        assert!(!r.timed_out);
        assert!(r.host_ns > 0.0, "CG.S computes on the host");
    }

    #[test]
    fn stealing_policy_completes() {
        let r = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .cta_policy(CtaPolicy::Stealing)
            .workload(Workload::Bp.spec_small())
            .run();
        assert!(!r.timed_out);
        assert!(r.kernel_ns > 0.0);
    }

    #[test]
    fn tracing_and_metrics_capture_the_run() {
        let r = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .trace(1 << 16)
            .metrics_every(1000)
            .workload(Workload::VecAdd.spec_small())
            .run();
        assert!(!r.timed_out);
        let trace = r.trace_json.expect("trace enabled");
        for needle in [
            "packet-inject",
            "packet-hop",
            "packet-eject",
            "vault-service",
            "cta-launch",
            "\"kernel\"",
        ] {
            assert!(trace.contains(needle), "trace must mention {needle}");
        }
        let metrics = r.metrics_json.expect("metrics enabled");
        assert!(metrics.contains("net.flits_injected"));
        assert!(metrics.contains("occupancy"));
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        let plain = small(Organization::Umn);
        let traced = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .trace(4096)
            .metrics_every(500)
            .workload(Workload::VecAdd.spec_small())
            .run();
        assert_eq!(plain.kernel_ns, traced.kernel_ns, "observer effect");
        assert_eq!(plain.traffic.total(), traced.traffic.total());
    }

    #[test]
    fn untraced_report_has_no_observability_payloads() {
        let r = small(Organization::Umn);
        assert!(r.trace_json.is_none());
        assert!(r.metrics_json.is_none());
    }

    #[test]
    fn gpu_loss_rebalances_ctas_onto_survivor() {
        use memnet_common::faults::{FaultKind, FaultPlan};
        let mut plan = FaultPlan::new();
        plan.push(1, FaultKind::GpuLoss { gpu: 1 });
        let r = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .faults(plan)
            .workload(Workload::VecAdd.spec_small())
            .run();
        assert!(!r.timed_out, "degraded run must complete, not hang");
        assert_eq!(r.lost_gpus, 1);
        assert_eq!(r.faults_injected, 1);
        assert!(r.rebalanced_ctas > 0, "GPU 1's CTAs must move to GPU 0");
        let clean = small(Organization::Umn);
        assert!(
            r.per_gpu[0].ctas_done > clean.per_gpu[0].ctas_done,
            "survivor must absorb the lost GPU's work"
        );
        assert!(
            r.kernel_ns > clean.kernel_ns,
            "one GPU doing all the work is slower"
        );
    }

    #[test]
    fn gpu_loss_with_stealing_policy_completes() {
        use memnet_common::faults::{FaultKind, FaultPlan};
        let mut plan = FaultPlan::new();
        plan.push(1, FaultKind::GpuLoss { gpu: 0 });
        let r = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .cta_policy(CtaPolicy::Stealing)
            .faults(plan)
            .workload(Workload::VecAdd.spec_small())
            .run();
        assert!(!r.timed_out);
        assert_eq!(r.lost_gpus, 1);
        assert!(r.rebalanced_ctas > 0);
    }

    #[test]
    fn pcie_with_lost_gpu_completes_via_rebalancing() {
        use memnet_common::faults::{FaultKind, FaultPlan};
        let mut plan = FaultPlan::new();
        plan.push(
            memnet_common::time::ns_to_fs(50.0),
            FaultKind::GpuLoss { gpu: 1 },
        );
        let r = SimBuilder::new(Organization::Pcie)
            .gpus(2)
            .sms_per_gpu(2)
            .faults(plan)
            .workload(Workload::VecAdd.spec_small())
            .run();
        assert!(!r.timed_out, "PCIe + lost GPU must complete, not hang");
        assert_eq!(r.lost_gpus, 1);
        assert!(r.kernel_ns > 0.0);
    }

    #[test]
    fn stalled_vaults_slow_the_kernel_without_losing_requests() {
        use memnet_common::faults::{FaultKind, FaultPlan};
        let mut plan = FaultPlan::new();
        let vaults = SystemConfig::scaled().hmc.vaults;
        for v in 0..u64::from(vaults) {
            plan.push(
                1,
                FaultKind::VaultStall {
                    hmc: 0,
                    vault: v,
                    stall_tcks: 50_000,
                },
            );
        }
        let r = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .faults(plan)
            .workload(Workload::VecAdd.spec_small())
            .run();
        let clean = small(Organization::Umn);
        assert!(!r.timed_out);
        assert_eq!(r.faults_injected, u64::from(vaults));
        assert_eq!(r.failed_requests, 0, "stalls delay, never drop");
        assert!(
            r.kernel_ns > clean.kernel_ns,
            "frozen cube must slow the kernel: {} vs {}",
            r.kernel_ns,
            clean.kernel_ns
        );
    }

    #[test]
    fn link_cut_mid_kernel_completes_deterministically() {
        use memnet_common::faults::{FaultKind, FaultPlan, LinkClass};
        let run = || {
            let mut plan = FaultPlan::new();
            plan.push(
                memnet_common::time::ns_to_fs(20.0),
                FaultKind::LinkDown {
                    class: LinkClass::HmcHmc,
                    ordinal: 0,
                },
            );
            SimBuilder::new(Organization::Umn)
                .gpus(2)
                .sms_per_gpu(2)
                .faults(plan)
                .workload(Workload::VecAdd.spec_small())
                .run()
        };
        let a = run();
        let b = run();
        assert!(!a.timed_out, "cut network must still complete");
        assert_eq!(a.faults_injected, 1);
        assert_eq!(a.kernel_ns, b.kernel_ns, "fault runs stay deterministic");
        assert_eq!(a.failed_requests, b.failed_requests);
        assert_eq!(a.reroutes, b.reroutes);
    }

    #[test]
    fn absent_link_classes_are_skipped_not_applied() {
        use memnet_common::faults::{FaultKind, FaultPlan, LinkClass};
        let mut plan = FaultPlan::new();
        plan.push(
            1,
            FaultKind::LinkDown {
                class: LinkClass::Pcie,
                ordinal: 0,
            },
        );
        // UMN has no PCIe links: the event is dropped, counted, harmless.
        let r = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .faults(plan)
            .workload(Workload::VecAdd.spec_small())
            .run();
        assert!(!r.timed_out);
        assert_eq!(r.faults_injected, 0);
        assert_eq!(r.faults_skipped, 1);
    }

    #[test]
    fn fault_trace_records_the_injection() {
        use memnet_common::faults::{FaultKind, FaultPlan};
        let mut plan = FaultPlan::new();
        plan.push(1, FaultKind::GpuLoss { gpu: 1 });
        let r = SimBuilder::new(Organization::Umn)
            .gpus(2)
            .sms_per_gpu(2)
            .trace(1 << 16)
            .metrics_every(1000)
            .faults(plan)
            .workload(Workload::VecAdd.spec_small())
            .run();
        let trace = r.trace_json.expect("trace enabled");
        assert!(trace.contains("gpu-loss"), "fault instant in the trace");
        let metrics = r.metrics_json.expect("metrics enabled");
        assert!(metrics.contains("faults.injected"));
        assert!(metrics.contains("ske.rebalanced_ctas"));
    }

    #[test]
    fn overlay_umn_uses_passthrough_for_cpu_traffic() {
        let mut spec = Workload::CgS.spec_small();
        spec.kernel = std::sync::Arc::new({
            let mut k = (*spec.kernel).clone();
            k.ctas = 8;
            k.iters = 2;
            k
        });
        let r = SimBuilder::new(Organization::Umn)
            .gpus(3)
            .sms_per_gpu(2)
            .overlay(true)
            .workload(spec)
            .run();
        assert!(!r.timed_out);
        assert!(
            r.passthrough > 0,
            "CPU packets should take pass-through hops"
        );
    }
}
