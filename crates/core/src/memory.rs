//! Virtual address space organization (Section III-C).
//!
//! All GPUs and the CPU share one virtual address space (unified virtual
//! addressing); the SKE runtime keeps the shared page table and performs
//! translation at the device boundary. Pages are placed at 4 KB granularity
//! on *clusters* (a device's local HMC group) with a random page placement
//! policy over each region's allowed cluster set, and cache lines
//! interleave across the cluster's local HMCs via the
//! `RW:CLH:BK:CT:VL:LC:CLL:BY` mapping.
//!
//! Regions let the system organizations express data residency:
//!
//! * memcpy organizations: the device region lives on GPU clusters, the
//!   host staging region on the CPU cluster;
//! * zero-copy: the whole footprint lives on the CPU cluster;
//! * UMN: the footprint is spread over *all* clusters (no copies);
//! * Fig. 7: the device region is restricted to 1, 2 or 4 GPU clusters.

use memnet_common::{SplitMix64, SystemConfig};
use memnet_hmc::mapping::{AddressMap, Location};
use std::collections::BTreeMap;

/// How fresh pages pick a cluster from their region's allowed set.
///
/// The paper assumes random placement (Section VI-A); the alternatives are
/// the ablation of `ablation_placement`: round-robin is equally balanced,
/// while a naive contiguous (first-fit) allocator concentrates small
/// footprints on one cluster and recreates the Fig. 10(b) hotspotting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Uniform random over the region's clusters (paper default).
    #[default]
    Random,
    /// Rotate through the region's clusters.
    RoundRobin,
    /// Always the first cluster of the region (naive first-fit arena).
    Contiguous,
}

/// Virtual base of the host staging copy of the footprint.
pub const HOST_BASE: u64 = 1 << 40;

/// A virtual region and the clusters its pages may land on.
#[derive(Debug, Clone)]
struct Region {
    base: u64,
    bytes: u64,
    clusters: Vec<u32>,
}

/// The shared page table plus placement policy.
#[derive(Debug)]
pub struct MemoryLayout {
    map: AddressMap,
    regions: Vec<Region>,
    page_table: BTreeMap<u64, u64>,
    next_seq: Vec<u64>,
    page_bytes: u64,
    rng: SplitMix64,
    policy: PlacementPolicy,
    rr_next: usize,
}

impl MemoryLayout {
    /// Creates an empty layout for `n_clusters` clusters.
    pub fn new(cfg: &SystemConfig, n_clusters: u32) -> Self {
        MemoryLayout {
            map: AddressMap::with_clusters(cfg, n_clusters),
            regions: Vec::new(),
            page_table: BTreeMap::new(),
            next_seq: vec![0; n_clusters as usize],
            page_bytes: cfg.page_bytes,
            rng: SplitMix64::new(cfg.seed ^ 0x9A6E),
            policy: PlacementPolicy::Random,
            rr_next: 0,
        }
    }

    /// Sets the page placement policy (default: random, Section VI-A).
    pub fn set_policy(&mut self, policy: PlacementPolicy) {
        self.policy = policy;
    }

    /// The underlying address map.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Declares that virtual `[base, base+bytes)` may be placed on
    /// `clusters`. Later regions take precedence for overlapping ranges.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty or names a cluster beyond the layout.
    pub fn add_region(&mut self, base: u64, bytes: u64, clusters: &[u32]) {
        assert!(!clusters.is_empty(), "region needs at least one cluster");
        assert!(
            clusters.iter().all(|&c| (c as usize) < self.next_seq.len()),
            "cluster out of range"
        );
        self.regions.push(Region {
            base,
            bytes,
            clusters: clusters.to_vec(),
        });
    }

    /// Translates a virtual address, allocating the page on first touch.
    ///
    /// # Panics
    ///
    /// Panics if the address belongs to no declared region.
    pub fn translate(&mut self, vaddr: u64) -> u64 {
        let vpage = vaddr / self.page_bytes;
        let offset = vaddr % self.page_bytes;
        if let Some(&ppage) = self.page_table.get(&vpage) {
            return ppage * self.page_bytes + offset;
        }
        let region = self
            .regions
            .iter()
            .rev()
            .find(|r| vaddr >= r.base && vaddr < r.base + r.bytes)
            .unwrap_or_else(|| panic!("virtual address {vaddr:#x} outside all regions"));
        let cluster = match self.policy {
            // Random page placement (Section VI-A).
            PlacementPolicy::Random => {
                region.clusters[self.rng.next_below(region.clusters.len() as u64) as usize]
            }
            PlacementPolicy::RoundRobin => {
                let c = region.clusters[self.rr_next % region.clusters.len()];
                self.rr_next += 1;
                c
            }
            PlacementPolicy::Contiguous => region.clusters[0],
        };
        let seq = self.next_seq[cluster as usize];
        self.next_seq[cluster as usize] += 1;
        let ppage = self.map.page_for_cluster(seq, cluster);
        self.page_table.insert(vpage, ppage);
        ppage * self.page_bytes + offset
    }

    /// Translates and decodes in one step.
    pub fn locate(&mut self, vaddr: u64) -> (u64, Location) {
        let paddr = self.translate(vaddr);
        (paddr, self.map.decode(paddr))
    }

    /// Number of distinct pages allocated.
    pub fn pages_allocated(&self) -> usize {
        self.page_table.len()
    }

    /// Captures the mutable placement state for checkpointing. Regions and
    /// policy are configuration (re-derived on rebuild); what must carry
    /// over is the first-touch outcome: the page table, per-cluster
    /// allocation cursors, the placement RNG and the round-robin cursor.
    pub(crate) fn snapshot_state(&self) -> MemoryState {
        MemoryState {
            page_table: self.page_table.iter().map(|(&v, &p)| (v, p)).collect(),
            next_seq: self.next_seq.clone(),
            rng_state: self.rng.state(),
            rr_next: self.rr_next as u64,
        }
    }

    /// Overwrites the mutable placement state from a
    /// [`MemoryLayout::snapshot_state`] taken on an identically configured
    /// layout.
    ///
    /// # Panics
    ///
    /// Panics if the cluster count does not match.
    pub(crate) fn restore_state(&mut self, s: &MemoryState) {
        assert_eq!(
            s.next_seq.len(),
            self.next_seq.len(),
            "memory layout cluster count mismatch on restore"
        );
        self.page_table = s.page_table.iter().copied().collect();
        self.next_seq.clone_from(&s.next_seq);
        self.rng = SplitMix64::new(s.rng_state);
        self.rr_next = s.rr_next as usize;
    }
}

/// Serializable mutable state of a [`MemoryLayout`] (see
/// [`MemoryLayout::snapshot_state`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct MemoryState {
    /// `(virtual page, physical page)` pairs in ascending key order.
    pub(crate) page_table: Vec<(u64, u64)>,
    /// Next page sequence number per cluster.
    pub(crate) next_seq: Vec<u64>,
    /// Placement RNG internal state.
    pub(crate) rng_state: u64,
    /// Round-robin placement cursor.
    pub(crate) rr_next: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(n_clusters: u32) -> MemoryLayout {
        MemoryLayout::new(&SystemConfig::paper(), n_clusters)
    }

    #[test]
    fn same_page_translates_consistently() {
        let mut l = layout(4);
        l.add_region(0, 1 << 20, &[0, 1, 2, 3]);
        let a = l.translate(0x1234);
        let b = l.translate(0x1238);
        assert_eq!(a + 4, b, "offsets within a page are preserved");
        assert_eq!(l.pages_allocated(), 1);
    }

    #[test]
    fn restricted_region_stays_on_its_clusters() {
        let mut l = layout(4);
        l.add_region(0, 1 << 22, &[2]);
        for off in (0..(1u64 << 22)).step_by(4096) {
            let (_, loc) = l.locate(off);
            assert_eq!(loc.cluster, 2);
        }
    }

    #[test]
    fn random_placement_spreads_pages() {
        let mut l = layout(4);
        l.add_region(0, 4 << 20, &[0, 1, 2, 3]);
        let mut counts = [0u32; 4];
        for off in (0..(4u64 << 20)).step_by(4096) {
            let (_, loc) = l.locate(off);
            counts[loc.cluster as usize] += 1;
        }
        for c in counts {
            assert!(c > 128, "each cluster should get a fair share: {counts:?}");
        }
    }

    #[test]
    fn lines_within_a_page_interleave_local_hmcs() {
        let mut l = layout(4);
        l.add_region(0, 1 << 20, &[1]);
        let mut seen = [false; 4];
        for off in (0..4096u64).step_by(128) {
            let (_, loc) = l.locate(off);
            seen[loc.local_hmc as usize] = true;
            assert_eq!(loc.cluster, 1);
        }
        assert!(
            seen.iter().all(|&s| s),
            "cache lines must cover all local HMCs"
        );
    }

    #[test]
    fn later_regions_take_precedence() {
        let mut l = layout(4);
        l.add_region(0, 1 << 20, &[0]);
        l.add_region(0, 4096, &[3]);
        let (_, loc) = l.locate(100);
        assert_eq!(loc.cluster, 3);
        let (_, loc2) = l.locate(8192);
        assert_eq!(loc2.cluster, 0);
    }

    #[test]
    fn host_region_is_disjoint_from_device() {
        let mut l = layout(5);
        l.add_region(0, 1 << 20, &[0, 1, 2, 3]);
        l.add_region(HOST_BASE, 1 << 20, &[4]);
        let a = l.translate(0x1000);
        let b = l.translate(HOST_BASE + 0x1000);
        assert_ne!(a, b);
        assert_eq!(l.map().decode(b).cluster, 4);
    }

    #[test]
    fn translation_is_deterministic() {
        let run = || {
            let mut l = layout(4);
            l.add_region(0, 1 << 22, &[0, 1, 2, 3]);
            (0..256u64)
                .map(|i| l.translate(i * 4096))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "outside all regions")]
    fn unmapped_address_panics() {
        let mut l = layout(4);
        l.add_region(0, 4096, &[0]);
        let _ = l.translate(1 << 30);
    }

    #[test]
    #[should_panic(expected = "cluster out of range")]
    fn bad_cluster_panics() {
        let mut l = layout(2);
        l.add_region(0, 4096, &[5]);
    }
}
