//! The Table II workload suite as synthetic kernel models.
//!
//! Each workload is a [`SyntheticKernel`] instance whose parameters encode
//! the traffic character of the original CUDA benchmark, plus host-side
//! staging information (memcpy sizes, host compute phases). Problem sizes
//! are scaled from the paper's inputs so that a full Fig. 14 sweep
//! simulates in minutes; the scaling per workload is documented on each
//! constructor.
//!
//! | Abbr | Original | Character captured |
//! |------|----------|--------------------|
//! | VECADD | CUDA SDK vectorAdd | 2-read/1-write streaming (Fig. 7) |
//! | BP   | Rodinia Back Propagation | bandwidth-bound layered streaming |
//! | BFS  | Rodinia Breadth-First Search | irregular + atomics, low compute |
//! | SRAD | Rodinia SRAD | 2-D stencil with halo reuse |
//! | KMN  | Rodinia K-means | uniform streaming + shared centroids (Fig. 10a) |
//! | BH   | LonestarGPU Barnes-Hut | dependent tree walks |
//! | SP   | LonestarGPU Survey Propagation | irregular + atomics |
//! | SCAN | CUDA SDK prefix sum | pure streaming, memcpy-dominated |
//! | 3DFD | CUDA SDK 3-D finite difference | deep stencil streaming |
//! | FWT  | CUDA SDK Fast Walsh Transform | butterfly strides |
//! | CG.S | NAS CG class S | tiny, imbalanced, CPU-assisted (Fig. 10b, 18) |
//! | FT.S | NAS FT class S | small strided FFT, CPU-assisted (Fig. 18) |
//! | RAY  | GPGPU-sim ray tracing | compute-heavy, divergent reads |
//! | STO  | StoreGPU | hashing streams |
//! | CP   | Parboil Coulombic Potential | compute-bound, tiny reused footprint (Fig. 19) |
//!
//! # Example
//!
//! ```
//! use memnet_workloads::Workload;
//!
//! let spec = Workload::Kmn.spec();
//! assert_eq!(spec.abbr, "KMN");
//! assert!(spec.kernel.ctas > 0);
//! ```

pub mod host;
pub mod synth;

pub use host::HostWork;
pub use synth::SyntheticKernel;

use std::sync::Arc;

/// A complete workload: kernel + host staging + host compute phases.
///
/// Specs are owned data (names included) so they can come from anywhere:
/// the built-in [`Workload`] constructors, a runtime-loaded
/// `memnet-wdl` JSON model, or a fuzzer.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Paper abbreviation (Table II) or a model-supplied label.
    pub abbr: String,
    /// Full name.
    pub name: String,
    /// The GPU kernel.
    pub kernel: Arc<SyntheticKernel>,
    /// Bytes staged host→device before the kernel (memcpy organizations).
    pub h2d_bytes: u64,
    /// Bytes staged device→host after the kernel.
    pub d2h_bytes: u64,
    /// Host compute before the kernel (None for GPU-only workloads).
    pub host_pre: Option<HostWork>,
    /// Host compute after the kernel, typically a reduction over outputs.
    pub host_post: Option<HostWork>,
}

impl WorkloadSpec {
    /// Total virtual footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        use memnet_gpu::kernel::KernelModel;
        self.kernel.footprint_bytes()
    }

    /// True when the CPU computes between kernel phases (CG.S, FT.S).
    pub fn cpu_active(&self) -> bool {
        self.host_pre.is_some() || self.host_post.is_some()
    }
}

/// The evaluated workloads (Table II, plus vectorAdd for Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// CUDA SDK vectorAdd (Fig. 7 remote-access study).
    VecAdd,
    /// Back Propagation.
    Bp,
    /// Breadth-First Search.
    Bfs,
    /// Speckle-Reducing Anisotropic Diffusion.
    Srad,
    /// K-means.
    Kmn,
    /// Barnes-Hut.
    Bh,
    /// Survey Propagation.
    Sp,
    /// Parallel prefix sum.
    Scan,
    /// 3-D finite difference.
    Fd3d,
    /// Fast Walsh Transform.
    Fwt,
    /// NAS Conjugate Gradient, class S.
    CgS,
    /// NAS FFT, class S.
    FtS,
    /// Ray tracing.
    Ray,
    /// StoreGPU.
    Sto,
    /// Coulombic Potential.
    Cp,
}

impl Workload {
    /// Every Table II workload (excludes the Fig. 7 VECADD microbenchmark).
    pub fn table2() -> [Workload; 14] {
        use Workload::*;
        [
            Bp, Bfs, Srad, Kmn, Bh, Sp, Scan, Fd3d, Fwt, CgS, FtS, Ray, Sto, Cp,
        ]
    }

    /// The subset used for the Fig. 19 scalability study.
    pub fn scalability_set() -> [Workload; 7] {
        use Workload::*;
        [Fd3d, Bp, Cp, Fwt, Ray, Scan, Srad]
    }

    /// Paper abbreviation.
    pub fn abbr(self) -> &'static str {
        use Workload::*;
        match self {
            VecAdd => "VECADD",
            Bp => "BP",
            Bfs => "BFS",
            Srad => "SRAD",
            Kmn => "KMN",
            Bh => "BH",
            Sp => "SP",
            Scan => "SCAN",
            Fd3d => "3DFD",
            Fwt => "FWT",
            CgS => "CG.S",
            FtS => "FT.S",
            Ray => "RAY",
            Sto => "STO",
            Cp => "CP",
        }
    }

    /// The default (scaled) specification used by the bench harness,
    /// sized for the 4-GPU scaled machine.
    pub fn spec(self) -> WorkloadSpec {
        self.spec_scaled(1)
    }

    /// A tiny specification for tests and the quickstart example.
    pub fn spec_small(self) -> WorkloadSpec {
        let mut s = self.spec_scaled(1);
        let mut k = (*s.kernel).clone();
        k.ctas = (k.ctas / 8).max(8);
        k.iters = (k.iters / 4).max(2);
        k.shared_bytes = (k.shared_bytes / 8).max(4096);
        k.read_bytes = (k.read_bytes / 8).max(k.ctas as u64 * 128);
        k.write_bytes = (k.write_bytes / 8).max(k.ctas as u64 * 128);
        s.h2d_bytes = k.shared_bytes + k.read_bytes;
        s.d2h_bytes = k.write_bytes;
        // Rebase host phases onto the shrunken output region.
        s.host_post = s.host_post.map(|hp| HostWork {
            region_base: k.shared_bytes + k.read_bytes,
            region_bytes: k.write_bytes,
            reads: (k.write_bytes / 64).min(hp.reads),
            ..hp
        });
        s.kernel = Arc::new(k);
        s
    }

    /// A larger input for the Fig. 19 scalability study: `scale`× the CTAs
    /// and data of the default spec (FWT deliberately scales less — the
    /// paper notes its input was too small to keep 16 GPUs busy).
    pub fn spec_large(self) -> WorkloadSpec {
        let factor = if self == Workload::Fwt { 2 } else { 4 };
        self.spec_scaled(factor)
    }

    /// Builds the spec with a CTA/data multiplier.
    pub fn spec_scaled(self, scale: u32) -> WorkloadSpec {
        let s = scale.max(1);
        let sc = |v: u64| v * s as u64;
        let sk = |k: SyntheticKernel| Arc::new(k);
        // Baseline machine: 4 GPUs × 16 SMs × 8 slots = 512 resident CTAs.
        match self {
            Workload::VecAdd => {
                let k = sk(SyntheticKernel {
                    ctas: 512 * s,
                    iters: 16,
                    compute_gap: 64,
                    seq_reads: 2,
                    rand_reads: 0,
                    dep_reads: 0,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 0,
                    reuse: 2,
                    shared_bytes: 0,
                    read_bytes: sc(4 << 20),
                    write_bytes: sc(2 << 20),
                    stride: 128,
                    seed: 0xADD,
                });
                spec("VECADD", "vectorAdd (CUDA SDK)", k, None, None)
            }
            Workload::Bp => {
                // 1M-point backprop scaled: bandwidth-bound layered streams,
                // little compute — the workload with the largest GMN gain.
                let k = sk(SyntheticKernel {
                    ctas: 512 * s,
                    iters: 192,
                    compute_gap: 48,
                    seq_reads: 3,
                    rand_reads: 1,
                    dep_reads: 0,
                    writes: 1,
                    halo_reads: 1,
                    atomic_every: 0,
                    reuse: 3,
                    shared_bytes: sc(512 << 10),
                    read_bytes: sc(3 << 20),
                    write_bytes: sc(1 << 20),
                    stride: 128,
                    seed: 0xB9,
                });
                spec("BP", "Back Propagation (Rodinia)", k, None, None)
            }
            Workload::Bfs => {
                // 1M-node BFS scaled: scattered neighbor reads, level
                // updates via atomics, negligible compute.
                let k = sk(SyntheticKernel {
                    ctas: 384 * s,
                    iters: 96,
                    compute_gap: 64,
                    seq_reads: 1,
                    rand_reads: 3,
                    dep_reads: 2,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 4,
                    reuse: 2,
                    shared_bytes: sc(3 << 20),
                    read_bytes: sc(2 << 20),
                    write_bytes: sc(1 << 20),
                    stride: 128,
                    seed: 0xBF5,
                });
                spec("BFS", "Breadth-First Search (Rodinia)", k, None, None)
            }
            Workload::Srad => {
                // 2K×2K 5-point stencil scaled: strong halo reuse.
                let k = sk(SyntheticKernel {
                    ctas: 512 * s,
                    iters: 128,
                    compute_gap: 160,
                    seq_reads: 3,
                    rand_reads: 0,
                    dep_reads: 0,
                    writes: 1,
                    halo_reads: 2,
                    atomic_every: 0,
                    reuse: 4,
                    shared_bytes: 0,
                    read_bytes: sc(2 << 20),
                    write_bytes: sc(2 << 20),
                    stride: 128,
                    seed: 0x5AD,
                });
                spec(
                    "SRAD",
                    "Speckle Reducing Anisotropic Diffusion (Rodinia)",
                    k,
                    None,
                    None,
                )
            }
            Workload::Kmn => {
                // 484K objects × 34 features scaled: object streaming plus
                // uniform reads of shared centroids — the uniform traffic
                // matrix of Fig. 10(a).
                let k = sk(SyntheticKernel {
                    ctas: 512 * s,
                    iters: 256,
                    compute_gap: 96,
                    seq_reads: 2,
                    rand_reads: 2,
                    dep_reads: 0,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 0,
                    reuse: 3,
                    shared_bytes: sc(2 << 20),
                    read_bytes: sc(3 << 20),
                    write_bytes: sc(512 << 10),
                    stride: 128,
                    seed: 0x6A3,
                });
                spec("KMN", "K-means (Rodinia)", k, None, None)
            }
            Workload::Bh => {
                // 8K-body Barnes-Hut scaled: serialized tree walks.
                let k = sk(SyntheticKernel {
                    ctas: 384 * s,
                    iters: 56,
                    compute_gap: 224,
                    seq_reads: 1,
                    rand_reads: 1,
                    dep_reads: 5,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 0,
                    reuse: 3,
                    shared_bytes: sc(2 << 20),
                    read_bytes: sc(1 << 20),
                    write_bytes: sc(1 << 20),
                    stride: 128,
                    seed: 0xB4,
                });
                spec("BH", "Barnes-Hut (LonestarGPU)", k, None, None)
            }
            Workload::Sp => {
                // 100K clauses / 300K literals scaled: irregular graph
                // updates with atomics.
                let k = sk(SyntheticKernel {
                    ctas: 384 * s,
                    iters: 80,
                    compute_gap: 96,
                    seq_reads: 1,
                    rand_reads: 3,
                    dep_reads: 1,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 3,
                    reuse: 2,
                    shared_bytes: sc(3 << 20),
                    read_bytes: sc(2 << 20),
                    write_bytes: sc(1 << 20),
                    stride: 128,
                    seed: 0x59,
                });
                spec("SP", "Survey Propagation (LonestarGPU)", k, None, None)
            }
            Workload::Scan => {
                // 16M-element prefix sum scaled: pure streaming; memcpy
                // dominates total runtime.
                let k = sk(SyntheticKernel {
                    ctas: 512 * s,
                    iters: 192,
                    compute_gap: 32,
                    seq_reads: 1,
                    rand_reads: 0,
                    dep_reads: 0,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 0,
                    reuse: 2,
                    shared_bytes: 0,
                    read_bytes: sc(2 << 20),
                    write_bytes: sc(2 << 20),
                    stride: 128,
                    seed: 0x5CA,
                });
                spec("SCAN", "Parallel prefix sum (CUDA SDK)", k, None, None)
            }
            Workload::Fd3d => {
                // 1024×1024×4 3-D stencil scaled: deep read fan-in.
                let k = sk(SyntheticKernel {
                    ctas: 512 * s,
                    iters: 160,
                    compute_gap: 112,
                    seq_reads: 5,
                    rand_reads: 0,
                    dep_reads: 0,
                    writes: 1,
                    halo_reads: 2,
                    atomic_every: 0,
                    reuse: 4,
                    shared_bytes: 0,
                    read_bytes: sc(3 << 20),
                    write_bytes: sc(1536 << 10),
                    stride: 128,
                    seed: 0x3DFD,
                });
                spec("3DFD", "3-D finite difference (CUDA SDK)", k, None, None)
            }
            Workload::Fwt => {
                // 8M-point Walsh transform scaled: butterfly strides touch
                // distant pages each pass.
                let k = sk(SyntheticKernel {
                    ctas: 448 * s,
                    iters: 160,
                    compute_gap: 64,
                    seq_reads: 2,
                    rand_reads: 0,
                    dep_reads: 0,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 0,
                    reuse: 2,
                    shared_bytes: 0,
                    read_bytes: sc(3 << 20),
                    write_bytes: sc(1536 << 10),
                    stride: 4096,
                    seed: 0xF3,
                });
                spec("FWT", "Fast Walsh Transform (CUDA SDK)", k, None, None)
            }
            Workload::CgS => {
                // Class S (1400 rows): deliberately tiny and imbalanced —
                // too few CTAs for 4 GPUs (Fig. 10(b)); the CPU reduces
                // between iterations (Fig. 18).
                // The hot x-vector is a handful of pages, so whichever
                // clusters they randomly land on become hot HMCs — the
                // Fig. 10(b) imbalance.
                let k = sk(SyntheticKernel {
                    ctas: 24 * s,
                    iters: 28,
                    compute_gap: 96,
                    seq_reads: 2,
                    rand_reads: 3,
                    dep_reads: 1,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 1,
                    reuse: 3,
                    shared_bytes: 16 << 10,
                    read_bytes: sc(128 << 10),
                    write_bytes: sc(32 << 10),
                    stride: 128,
                    seed: 0xC6,
                });
                spec(
                    "CG.S",
                    "Conjugate Gradient class S (NAS)",
                    k,
                    Some(HostWork::compute(20_000)),
                    Some(HostWork::reduce((16 << 10) + (128 << 10), 32 << 10, 6)),
                )
            }
            Workload::FtS => {
                // Class S 64³ FFT: small strided passes; host twiddle work.
                let k = sk(SyntheticKernel {
                    ctas: 64 * s,
                    iters: 24,
                    compute_gap: 144,
                    seq_reads: 2,
                    rand_reads: 1,
                    dep_reads: 0,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 0,
                    reuse: 3,
                    shared_bytes: sc(512 << 10),
                    read_bytes: sc(2 << 20),
                    write_bytes: sc(512 << 10),
                    stride: 2048,
                    seed: 0xF7,
                });
                spec(
                    "FT.S",
                    "Fast Fourier Transform class S (NAS)",
                    k,
                    Some(HostWork::compute(15_000)),
                    Some(HostWork::reduce((512 << 10) + (2 << 20), 512 << 10, 8)),
                )
            }
            Workload::Ray => {
                // 1024×1024 ray tracing: divergent scene reads, heavy ALU.
                let k = sk(SyntheticKernel {
                    ctas: 512 * s,
                    iters: 48,
                    compute_gap: 720,
                    seq_reads: 0,
                    rand_reads: 3,
                    dep_reads: 2,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 0,
                    reuse: 3,
                    shared_bytes: sc(2 << 20),
                    read_bytes: 0,
                    write_bytes: sc(2 << 20),
                    stride: 128,
                    seed: 0x4A,
                });
                spec("RAY", "Ray Tracing (GPGPU-sim)", k, None, None)
            }
            Workload::Sto => {
                // 26 MB StoreGPU hashing scaled: stream + scattered reads.
                let k = sk(SyntheticKernel {
                    ctas: 448 * s,
                    iters: 128,
                    compute_gap: 144,
                    seq_reads: 1,
                    rand_reads: 1,
                    dep_reads: 0,
                    writes: 2,
                    halo_reads: 0,
                    atomic_every: 0,
                    reuse: 3,
                    shared_bytes: sc(512 << 10),
                    read_bytes: sc(1536 << 10),
                    write_bytes: sc(1 << 20),
                    stride: 128,
                    seed: 0x570,
                });
                spec("STO", "StoreGPU (GPGPU-sim)", k, None, None)
            }
            Workload::Cp => {
                // 512×256 grid, 100 atoms: compute-bound; the atom table is
                // tiny and reused, so L2 hit rate rises as GPUs scale — the
                // superlinear effect the paper reports at 8 GPUs.
                let k = sk(SyntheticKernel {
                    ctas: 512 * s,
                    iters: 48,
                    compute_gap: 1440,
                    seq_reads: 1,
                    rand_reads: 1,
                    dep_reads: 0,
                    writes: 1,
                    halo_reads: 0,
                    atomic_every: 0,
                    reuse: 4,
                    shared_bytes: 512 << 10,
                    read_bytes: sc(1 << 20),
                    write_bytes: sc(2 << 20),
                    stride: 128,
                    seed: 0xC9,
                });
                spec("CP", "Coulombic Potential (Parboil)", k, None, None)
            }
        }
    }
}

fn spec(
    abbr: &str,
    name: &str,
    kernel: Arc<SyntheticKernel>,
    host_pre: Option<HostWork>,
    host_post: Option<HostWork>,
) -> WorkloadSpec {
    let h2d = kernel.shared_bytes + kernel.read_bytes;
    let d2h = kernel.write_bytes;
    WorkloadSpec {
        abbr: abbr.to_string(),
        name: name.to_string(),
        kernel,
        h2d_bytes: h2d,
        d2h_bytes: d2h,
        host_pre,
        host_post,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_gpu::kernel::{CtaOp, KernelModel};

    #[test]
    fn all_specs_validate() {
        for w in Workload::table2().into_iter().chain([Workload::VecAdd]) {
            let s = w.spec();
            s.kernel
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.abbr));
            assert!(s.h2d_bytes > 0, "{} stages input", s.abbr);
            let small = w.spec_small();
            small
                .kernel
                .validate()
                .unwrap_or_else(|e| panic!("{} small: {e}", s.abbr));
            let large = w.spec_large();
            large
                .kernel
                .validate()
                .unwrap_or_else(|e| panic!("{} large: {e}", s.abbr));
        }
    }

    #[test]
    fn abbreviations_match_table2() {
        let abbrs: Vec<String> = Workload::table2().iter().map(|w| w.spec().abbr).collect();
        assert_eq!(
            abbrs,
            [
                "BP", "BFS", "SRAD", "KMN", "BH", "SP", "SCAN", "3DFD", "FWT", "CG.S", "FT.S",
                "RAY", "STO", "CP"
            ]
        );
    }

    #[test]
    fn only_cg_and_ft_use_the_cpu() {
        for w in Workload::table2() {
            let s = w.spec();
            let expect = matches!(w, Workload::CgS | Workload::FtS);
            assert_eq!(s.cpu_active(), expect, "{}", s.abbr);
        }
    }

    // The three WorkloadSpec invariants the memnet-wdl validator also
    // enforces on runtime-loaded models, pinned here on the built-in
    // suite so the two surfaces can never drift apart.

    #[test]
    fn footprint_is_the_sum_of_the_three_regions_at_every_scale() {
        for w in Workload::table2().into_iter().chain([Workload::VecAdd]) {
            for scale in [1u32, 2, 4, 8] {
                let s = w.spec_scaled(scale);
                let k = &s.kernel;
                assert_eq!(
                    s.footprint_bytes(),
                    k.shared_bytes + k.read_bytes + k.write_bytes,
                    "{} scale {scale}",
                    s.abbr
                );
            }
            let small = w.spec_small();
            assert_eq!(
                small.footprint_bytes(),
                small.kernel.shared_bytes + small.kernel.read_bytes + small.kernel.write_bytes,
                "{} small",
                small.abbr
            );
        }
    }

    #[test]
    fn spec_scaled_is_monotonic_in_work_and_footprint() {
        for w in Workload::table2().into_iter().chain([Workload::VecAdd]) {
            let mut prev = w.spec_scaled(1);
            for scale in [2u32, 4, 8] {
                let s = w.spec_scaled(scale);
                assert!(
                    s.kernel.ctas >= prev.kernel.ctas,
                    "{} scale {scale}: CTAs must not shrink",
                    s.abbr
                );
                assert!(
                    s.footprint_bytes() >= prev.footprint_bytes(),
                    "{} scale {scale}: footprint must not shrink",
                    s.abbr
                );
                assert!(
                    s.h2d_bytes >= prev.h2d_bytes && s.d2h_bytes >= prev.d2h_bytes,
                    "{} scale {scale}: staging must not shrink",
                    s.abbr
                );
                prev = s;
            }
        }
    }

    #[test]
    fn cpu_active_iff_host_phases_present_and_they_stay_in_bounds() {
        for w in Workload::table2().into_iter().chain([Workload::VecAdd]) {
            for s in [w.spec_small(), w.spec(), w.spec_large()] {
                assert_eq!(
                    s.cpu_active(),
                    s.host_pre.is_some() || s.host_post.is_some(),
                    "{}",
                    s.abbr
                );
                // Host phases that read memory must walk a region the
                // kernel footprint actually contains.
                for h in [&s.host_pre, &s.host_post].into_iter().flatten() {
                    if h.reads > 0 {
                        assert!(h.stride > 0, "{}: zero host stride", s.abbr);
                        assert!(
                            h.region_base + h.region_bytes <= s.footprint_bytes(),
                            "{}: host region outside the footprint",
                            s.abbr
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cg_s_is_small_and_underparallel() {
        let cg = Workload::CgS.spec();
        let kmn = Workload::Kmn.spec();
        assert!(cg.kernel.ctas < 64, "class S has too few CTAs for 4 GPUs");
        assert!(
            cg.footprint_bytes() * 4 < kmn.footprint_bytes(),
            "class S footprint is tiny"
        );
    }

    #[test]
    fn bfs_and_sp_issue_atomics() {
        for w in [Workload::Bfs, Workload::Sp] {
            let s = w.spec();
            assert!(s.kernel.atomic_every > 0, "{}", s.abbr);
        }
    }

    #[test]
    fn cp_is_compute_bound() {
        let cp = Workload::Cp.spec();
        let scan = Workload::Scan.spec();
        assert!(cp.kernel.compute_gap >= 10 * scan.kernel.compute_gap);
    }

    #[test]
    fn fwt_strides_exceed_a_page() {
        assert!(Workload::Fwt.spec().kernel.stride >= 4096);
    }

    #[test]
    fn spec_large_scales_ctas() {
        let base = Workload::Bp.spec();
        let large = Workload::Bp.spec_large();
        assert_eq!(large.kernel.ctas, base.kernel.ctas * 4);
        // FWT deliberately scales less.
        assert_eq!(
            Workload::Fwt.spec_large().kernel.ctas,
            Workload::Fwt.spec().kernel.ctas * 2
        );
    }

    #[test]
    fn kernels_generate_runnable_streams() {
        for w in Workload::table2() {
            let s = w.spec_small();
            let mut ops = 0;
            let mut mem = 0;
            for op in s.kernel.cta_stream(0) {
                ops += 1;
                if matches!(op, CtaOp::Mem(_)) {
                    mem += 1;
                }
                assert!(ops < 10_000, "{}: runaway stream", s.abbr);
            }
            assert!(mem > 0, "{}: kernel must touch memory", s.abbr);
        }
    }

    #[test]
    fn footprints_fit_the_address_space_budget() {
        for w in Workload::table2() {
            let s = w.spec_large();
            assert!(
                s.footprint_bytes() < 1 << 32,
                "{}: footprint too large",
                s.abbr
            );
        }
    }
}
