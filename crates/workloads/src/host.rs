//! Host-side (CPU) work descriptions.
//!
//! Most Table II workloads use the CPU only to stage data and launch
//! kernels, but CG.S and FT.S perform real host computation between kernel
//! phases (reductions, twiddle updates) — these are the two workloads of
//! the overlay-network experiment (Fig. 18). A [`HostWork`] describes that
//! computation as interleaved 64 B reads over a result region with compute
//! cycles per element, from which a `CpuStream` is generated.

use memnet_cpu::{CpuOp, CpuStream};

/// A host compute phase: `reads` strided loads over a region, with
/// `compute_per_read` CPU cycles of work after each, plus a fixed tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostWork {
    /// Number of 64 B loads.
    pub reads: u64,
    /// Byte offset of the region the host walks (virtual).
    pub region_base: u64,
    /// Region length in bytes.
    pub region_bytes: u64,
    /// Stride between loads in bytes.
    pub stride: u64,
    /// CPU cycles of computation per load.
    pub compute_per_read: u64,
    /// Fixed compute cycles at the end of the phase.
    pub tail_compute: u64,
}

impl HostWork {
    /// A pure-compute phase (no memory).
    pub fn compute(cycles: u64) -> Self {
        HostWork {
            reads: 0,
            region_base: 0,
            region_bytes: 0,
            stride: 64,
            compute_per_read: 0,
            tail_compute: cycles,
        }
    }

    /// A reduction over `[base, base + bytes)` with `per_read` cycles per
    /// element.
    pub fn reduce(base: u64, bytes: u64, per_read: u64) -> Self {
        HostWork {
            reads: bytes / 64,
            region_base: base,
            region_bytes: bytes,
            stride: 64,
            compute_per_read: per_read,
            tail_compute: 0,
        }
    }

    /// Generates the op stream for this phase.
    pub fn stream(&self) -> CpuStream {
        let w = *self;
        let mem_ops = (0..w.reads).flat_map(move |i| {
            let addr = w.region_base + (i * w.stride) % w.region_bytes.max(64);
            let mut ops = vec![CpuOp::Read(addr)];
            if w.compute_per_read > 0 {
                ops.push(CpuOp::Compute(w.compute_per_read));
            }
            ops
        });
        Box::new(mem_ops.chain((w.tail_compute > 0).then_some(CpuOp::Compute(w.tail_compute))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_phase_is_one_op() {
        let ops: Vec<CpuOp> = HostWork::compute(500).stream().collect();
        assert_eq!(ops, vec![CpuOp::Compute(500)]);
    }

    #[test]
    fn reduce_walks_the_region() {
        let w = HostWork::reduce(4096, 640, 3);
        let ops: Vec<CpuOp> = w.stream().collect();
        let reads: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                CpuOp::Read(a) => Some(*a),
                _ => None,
            })
            .collect();
        assert_eq!(reads.len(), 10);
        assert_eq!(reads[0], 4096);
        assert_eq!(reads[9], 4096 + 9 * 64);
        let computes = ops
            .iter()
            .filter(|o| matches!(o, CpuOp::Compute(3)))
            .count();
        assert_eq!(computes, 10);
    }

    #[test]
    fn reads_stay_in_region() {
        let w = HostWork {
            reads: 100,
            region_base: 1000,
            region_bytes: 320,
            stride: 64,
            compute_per_read: 0,
            tail_compute: 0,
        };
        for op in w.stream() {
            if let CpuOp::Read(a) = op {
                assert!((1000..1320).contains(&a));
            }
        }
    }

    #[test]
    fn zero_read_reduce_is_empty() {
        let ops: Vec<CpuOp> = HostWork::reduce(0, 0, 1).stream().collect();
        assert!(ops.is_empty());
    }
}
