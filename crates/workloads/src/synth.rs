//! The parametric synthetic kernel engine.
//!
//! Every Table II workload is an instance of [`SyntheticKernel`]: a
//! deterministic generator of per-CTA op streams parameterized by compute
//! intensity, sequential/random/dependent/write access counts, atomics, and
//! the sizes of three virtual regions:
//!
//! ```text
//! | shared (random reads) | read (sequential, split per CTA) | write (split per CTA) |
//! ```
//!
//! The parameters encode each workload's *traffic character* — which is
//! what the paper's evaluation exercises: total volume, locality (L1/L2
//! reuse), spread (uniform vs. hot HMCs, Fig. 10), read/write/atomic mix,
//! and compute/memory ratio.

use memnet_common::SplitMix64;
use memnet_gpu::kernel::{CtaOp, CtaStream, KernelModel, MemAccess};

/// Line size used for coalesced accesses.
const LINE: u64 = 128;

/// A deterministic, parametric GPU kernel model.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticKernel {
    /// CTAs in the grid.
    pub ctas: u32,
    /// Memory phases (outer iterations) per CTA.
    pub iters: u32,
    /// Compute cycles between memory phases.
    pub compute_gap: u32,
    /// Sequential-stream reads per phase (each from its own stream slice).
    pub seq_reads: u32,
    /// Independent random reads per phase, uniform over the shared region.
    pub rand_reads: u32,
    /// Dependent random reads per phase (serialized, pointer-chasing).
    pub dep_reads: u32,
    /// Sequential writes per phase.
    pub writes: u32,
    /// Halo reads per phase: reads into the *next* CTA's slice, so adjacent
    /// CTAs share cache lines (stencil halos). This is what makes chunked
    /// CTA assignment win over round-robin (Section III-B).
    pub halo_reads: u32,
    /// Issue one atomic every this many phases (0 = never).
    pub atomic_every: u32,
    /// Temporal reuse factor: each phase additionally re-reads the previous
    /// phase's sequential/halo lines `reuse - 1` times. Models the
    /// warp-level spatial/temporal reuse that gives real GPU kernels their
    /// L1/L2 hit rates (1 = pure streaming).
    pub reuse: u32,
    /// Shared random-read region in bytes.
    pub shared_bytes: u64,
    /// Sequential-read region in bytes (divided across CTAs).
    pub read_bytes: u64,
    /// Write region in bytes (divided across CTAs).
    pub write_bytes: u64,
    /// Stride between consecutive sequential accesses (≥ 128; larger values
    /// model butterfly/transpose patterns like FWT/FT).
    pub stride: u64,
    /// Base seed; each CTA derives an independent stream.
    pub seed: u64,
}

impl SyntheticKernel {
    /// Validates parameter consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistent parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.ctas == 0 || self.iters == 0 {
            return Err("kernel needs at least one CTA and one iteration".into());
        }
        if self.seq_reads > 0 && self.read_bytes < LINE * self.ctas as u64 {
            return Err("read region too small for per-CTA slices".into());
        }
        if self.writes > 0 && self.write_bytes < LINE * self.ctas as u64 {
            return Err("write region too small for per-CTA slices".into());
        }
        if (self.rand_reads > 0 || self.dep_reads > 0 || self.atomic_every > 0)
            && self.shared_bytes < LINE
        {
            return Err("shared region required for random/dependent/atomic accesses".into());
        }
        if self.stride < LINE {
            return Err("stride must be at least one line".into());
        }
        if self.halo_reads > 0 && (self.seq_reads == 0 || self.read_bytes < LINE * self.ctas as u64)
        {
            return Err("halo reads require sequential streams and a read region".into());
        }
        if self.seq_reads + self.rand_reads + self.dep_reads + self.writes + self.halo_reads == 0 {
            return Err("kernel must access memory".into());
        }
        Ok(())
    }

    /// Start of the sequential-read region.
    fn read_base(&self) -> u64 {
        self.shared_bytes
    }

    /// Start of the write region.
    fn write_base(&self) -> u64 {
        self.shared_bytes + self.read_bytes
    }
}

impl KernelModel for SyntheticKernel {
    fn grid_ctas(&self) -> u32 {
        self.ctas
    }

    fn footprint_bytes(&self) -> u64 {
        self.shared_bytes + self.read_bytes + self.write_bytes
    }

    fn cta_stream(&self, cta: u32) -> CtaStream {
        assert!(cta < self.ctas, "cta {cta} out of range");
        debug_assert!(
            self.validate().is_ok(),
            "invalid kernel: {:?}",
            self.validate()
        );
        Box::new(SynthStream {
            k: self.clone(),
            rng: SplitMix64::new(self.seed).fork(cta as u64),
            cta: cta as u64,
            iter: 0,
            dep_left: 0,
            atomic_pending: false,
            emitted_compute: false,
            batch_done: false,
        })
    }
}

/// Iterator state for one CTA.
struct SynthStream {
    k: SyntheticKernel,
    rng: SplitMix64,
    cta: u64,
    iter: u32,
    /// Dependent reads still to emit in the current phase.
    dep_left: u32,
    /// Atomic still to emit in the current phase.
    atomic_pending: bool,
    /// Compute op for the current phase already emitted.
    emitted_compute: bool,
    /// Batched phase accesses already emitted.
    batch_done: bool,
}

impl SynthStream {
    fn rand_shared_line(&mut self) -> u64 {
        let lines = (self.k.shared_bytes / LINE).max(1);
        self.rng.next_below(lines) * LINE
    }

    /// Sequential slice position for stream `s` at the current iteration,
    /// wrapping within this CTA's slice of `region_bytes`.
    fn seq_addr(&self, base: u64, region_bytes: u64, streams: u32, s: u32) -> u64 {
        self.seq_addr_for(self.cta, self.iter, base, region_bytes, streams, s)
    }

    fn seq_addr_for(
        &self,
        cta: u64,
        iter: u32,
        base: u64,
        region_bytes: u64,
        streams: u32,
        s: u32,
    ) -> u64 {
        let slice = (region_bytes / self.k.ctas as u64).max(LINE * streams.max(1) as u64);
        let slice_base = base + (cta * slice) % region_bytes.max(slice);
        let per_stream = (slice / streams.max(1) as u64).max(LINE);
        let stream_base = slice_base + s as u64 * per_stream;
        let off = (iter as u64 * self.k.stride) % per_stream.max(LINE);
        // Align and clamp inside the region.
        let addr = stream_base + (off / LINE) * LINE;
        let end = base + region_bytes;
        if addr + LINE > end {
            base + (addr % region_bytes.max(LINE)) / LINE * LINE
        } else {
            addr
        }
    }
}

impl Iterator for SynthStream {
    type Item = CtaOp;

    fn next(&mut self) -> Option<CtaOp> {
        loop {
            if self.iter >= self.k.iters {
                return None;
            }
            // Phase order: compute → batched phase accesses → dependent
            // chain → atomic → next phase.
            if !self.emitted_compute {
                self.emitted_compute = true;
                self.dep_left = self.k.dep_reads;
                self.atomic_pending =
                    self.k.atomic_every > 0 && (self.iter + 1).is_multiple_of(self.k.atomic_every);
                if self.k.compute_gap > 0 {
                    return Some(CtaOp::Compute(self.k.compute_gap));
                }
                continue;
            }
            let batch = self.k.seq_reads + self.k.rand_reads + self.k.writes + self.k.halo_reads;
            if batch > 0 && !self.batch_done {
                let mut v = Vec::with_capacity(batch as usize);
                for s in 0..self.k.seq_reads {
                    v.push(MemAccess::read(self.seq_addr(
                        self.k.read_base(),
                        self.k.read_bytes,
                        self.k.seq_reads,
                        s,
                    )));
                }
                for s in 0..self.k.halo_reads {
                    let neighbor = (self.cta + 1) % self.k.ctas as u64;
                    v.push(MemAccess::read(self.seq_addr_for(
                        neighbor,
                        self.iter,
                        self.k.read_base(),
                        self.k.read_bytes,
                        self.k.seq_reads.max(1),
                        s % self.k.seq_reads.max(1),
                    )));
                }
                // Temporal reuse: re-read the previous phase's lines, which
                // hit in the L1 (own lines) or the GPU-shared L2 (halo
                // lines from neighbor CTAs resident on the same GPU).
                if self.k.reuse > 1 && self.iter > 0 {
                    for _ in 1..self.k.reuse {
                        for s in 0..self.k.seq_reads {
                            v.push(MemAccess::read(self.seq_addr_for(
                                self.cta,
                                self.iter - 1,
                                self.k.read_base(),
                                self.k.read_bytes,
                                self.k.seq_reads,
                                s,
                            )));
                        }
                        for s in 0..self.k.halo_reads {
                            let neighbor = (self.cta + 1) % self.k.ctas as u64;
                            v.push(MemAccess::read(self.seq_addr_for(
                                neighbor,
                                self.iter - 1,
                                self.k.read_base(),
                                self.k.read_bytes,
                                self.k.seq_reads.max(1),
                                s % self.k.seq_reads.max(1),
                            )));
                        }
                    }
                }
                for _ in 0..self.k.rand_reads {
                    let a = self.rand_shared_line();
                    v.push(MemAccess::read(a));
                }
                for s in 0..self.k.writes {
                    v.push(MemAccess::write(self.seq_addr(
                        self.k.write_base(),
                        self.k.write_bytes,
                        self.k.writes,
                        s,
                    )));
                }
                self.batch_done = true;
                return Some(CtaOp::Mem(v));
            }
            if self.dep_left > 0 {
                self.dep_left -= 1;
                let a = self.rand_shared_line();
                return Some(CtaOp::Mem(vec![MemAccess::read(a)]));
            }
            if self.atomic_pending {
                self.atomic_pending = false;
                let a = self.rand_shared_line();
                return Some(CtaOp::Mem(vec![MemAccess::atomic(a)]));
            }
            // Phase finished.
            self.iter += 1;
            self.emitted_compute = false;
            self.batch_done = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basic() -> SyntheticKernel {
        SyntheticKernel {
            ctas: 8,
            iters: 4,
            compute_gap: 10,
            seq_reads: 2,
            rand_reads: 1,
            dep_reads: 2,
            writes: 1,
            halo_reads: 0,
            atomic_every: 2,
            reuse: 1,
            shared_bytes: 1 << 16,
            read_bytes: 1 << 16,
            write_bytes: 1 << 16,
            stride: 128,
            seed: 7,
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let k = basic();
        let a: Vec<CtaOp> = k.cta_stream(3).collect();
        let b: Vec<CtaOp> = k.cta_stream(3).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_ctas_differ() {
        let k = basic();
        let a: Vec<CtaOp> = k.cta_stream(0).collect();
        let b: Vec<CtaOp> = k.cta_stream(1).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn phase_structure_matches_parameters() {
        let k = basic();
        let ops: Vec<CtaOp> = k.cta_stream(0).collect();
        let computes = ops
            .iter()
            .filter(|o| matches!(o, CtaOp::Compute(_)))
            .count();
        assert_eq!(computes, 4, "one compute per phase");
        let atomics: usize = ops
            .iter()
            .filter_map(|o| match o {
                CtaOp::Mem(v) => Some(
                    v.iter()
                        .filter(|a| a.kind == memnet_common::AccessKind::Atomic)
                        .count(),
                ),
                _ => None,
            })
            .sum();
        assert_eq!(atomics, 2, "atomic every 2 phases over 4 iters");
        // Per phase: 1 batched op + 2 dependent ops (+ maybe atomic).
        let mems = ops.iter().filter(|o| matches!(o, CtaOp::Mem(_))).count();
        assert_eq!(mems, 4 * (1 + 2) + 2);
    }

    #[test]
    fn all_addresses_stay_in_footprint() {
        let k = basic();
        let fp = k.footprint_bytes();
        for cta in 0..k.ctas {
            for op in k.cta_stream(cta) {
                if let CtaOp::Mem(v) = op {
                    for a in v {
                        assert!(
                            a.addr + a.bytes as u64 <= fp,
                            "addr {:#x} outside footprint {fp:#x}",
                            a.addr
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn regions_are_respected() {
        let k = basic();
        for op in k.cta_stream(2) {
            if let CtaOp::Mem(v) = op {
                for a in v {
                    match a.kind {
                        memnet_common::AccessKind::Write => {
                            assert!(
                                a.addr >= k.shared_bytes + k.read_bytes,
                                "writes go to the write region"
                            );
                        }
                        memnet_common::AccessKind::Atomic => {
                            assert!(a.addr < k.shared_bytes, "atomics hit the shared region");
                        }
                        memnet_common::AccessKind::Read => {}
                    }
                }
            }
        }
    }

    #[test]
    fn random_reads_cover_the_shared_region_roughly_uniformly() {
        let mut k = basic();
        k.rand_reads = 4;
        k.dep_reads = 0;
        k.atomic_every = 0;
        k.iters = 64;
        let mut quart = [0u64; 4];
        for cta in 0..k.ctas {
            for op in k.cta_stream(cta) {
                if let CtaOp::Mem(v) = op {
                    for a in v.iter().filter(|a| a.addr < k.shared_bytes) {
                        quart[(a.addr * 4 / k.shared_bytes) as usize] += 1;
                    }
                }
            }
        }
        let total: u64 = quart.iter().sum();
        for q in quart {
            let frac = q as f64 / total as f64;
            assert!((0.15..0.35).contains(&frac), "quartile fraction {frac}");
        }
    }

    #[test]
    fn reuse_re_reads_previous_phase_lines() {
        let mut k = basic();
        k.reuse = 2;
        k.rand_reads = 0;
        k.dep_reads = 0;
        k.atomic_every = 0;
        k.writes = 0;
        // Collect per-phase batched reads; from phase 1 on, each batch must
        // contain the previous phase's addresses again.
        let mut batches: Vec<Vec<u64>> = Vec::new();
        for op in k.cta_stream(0) {
            if let CtaOp::Mem(v) = op {
                batches.push(v.iter().map(|a| a.addr).collect());
            }
        }
        assert!(batches.len() >= 2);
        for w in batches.windows(2) {
            let (prev, cur) = (&w[0], &w[1]);
            // First seq_reads of prev must appear in cur (the reuse reads).
            for a in prev.iter().take(k.seq_reads as usize) {
                assert!(cur.contains(a), "phase must re-read prev line {a:#x}");
            }
        }
        // All addresses still in the footprint.
        let fp = k.footprint_bytes();
        for b in &batches {
            for &a in b {
                assert!(a + 128 <= fp);
            }
        }
    }

    #[test]
    fn validate_catches_bad_parameters() {
        let mut k = basic();
        k.ctas = 0;
        assert!(k.validate().is_err());
        let mut k = basic();
        k.stride = 64;
        assert!(k.validate().is_err());
        let mut k = basic();
        k.shared_bytes = 0;
        assert!(k.validate().is_err(), "random reads need a shared region");
        let mut k = basic();
        k.seq_reads = 0;
        k.rand_reads = 0;
        k.dep_reads = 0;
        k.writes = 0;
        k.atomic_every = 0;
        assert!(k.validate().is_err(), "kernel must access memory");
        assert!(basic().validate().is_ok());
    }

    #[test]
    fn strided_kernel_spreads_addresses() {
        let mut k = basic();
        k.stride = 4096;
        k.ctas = 2;
        k.read_bytes = 1 << 20;
        let mut addrs = Vec::new();
        for op in k.cta_stream(0) {
            if let CtaOp::Mem(v) = op {
                for a in v {
                    if a.kind == memnet_common::AccessKind::Read
                        && a.addr >= k.shared_bytes
                        && a.addr < k.shared_bytes + k.read_bytes
                    {
                        addrs.push(a.addr);
                    }
                }
            }
        }
        let distinct: std::collections::HashSet<_> = addrs.iter().map(|a| a / 4096).collect();
        assert!(
            distinct.len() > 2,
            "strided reads should touch several 4 KB pages"
        );
    }
}
